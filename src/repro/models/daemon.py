"""A PVM-style daemon execution model (the §3.3/§4.1.1 comparator).

"Whereas PVM creates persistent 'daemon processes', and then uses them to
mediate between PE processes, AHS uses no daemons."  This model implements
the road not taken: every host runs a daemon; all communication is
PE -> local daemon -> remote daemon -> PE, each daemon hop paying a context
switch plus a pipe transfer, with the network leg in the middle (reliable,
TCP-like — daemons handle sequencing).

The supplied text quantifies the cost: an LdS through PVM measured about
1.6e-3 s where AHS's direct UDP socket needed ~4e-4 s — and, tellingly,
a PVM LdS of a variable *on the requesting machine* also took 1.6e-3 s,
because "most of PVM's system overhead" is the daemon path itself, not the
wire.  This model reproduces both facts (see its tests and E7's footnote).
"""

from __future__ import annotations

from typing import Any

from repro.events import Channel, Kernel, SharedCPU
from repro.models.base import BaseExecutionModel, NetworkParams, UnixBoxParams

__all__ = ["DaemonModel"]


class DaemonModel(BaseExecutionModel):
    """Distributed PEs communicating only through per-host daemons."""

    def __init__(self, kernel: Kernel, params: UnixBoxParams, n_pes: int,
                 net: NetworkParams | None = None,
                 marshal_overhead: float = 4.0e-4):
        super().__init__(kernel, params, n_pes)
        if marshal_overhead < 0:
            raise ValueError(f"negative marshal overhead {marshal_overhead}")
        self.net = net or NetworkParams()
        #: per-hop daemon protocol cost (XDR marshalling, routing tables) —
        #: "most of PVM's system overhead ... is the dominant portion of
        #: the PVM communication time" (§4.1.1)
        self.marshal_overhead = marshal_overhead
        # One host per PE, as in the UDP model; each host runs one daemon.
        self.cpus = [SharedCPU(kernel, cores=params.cores) for _ in range(n_pes)]
        self.daemon_inbox = [Channel(kernel, name=f"daemon{i}") for i in range(n_pes)]
        self.net_link = [Channel(kernel, latency=self.net.latency,
                                 name=f"link{i}") for i in range(n_pes)]
        self.pe_inbox = [Channel(kernel, name=f"pe{i}") for i in range(n_pes)]
        self.mono: dict[str, Any] = {}          # master daemon (0) owns monos
        self.published: dict[tuple[int, str], Any] = {}
        self._barrier_waiting: list[int] = []
        self.daemon_hops = 0
        for host in range(n_pes):
            kernel.spawn(self._daemon(host), name=f"daemon{host}")
            kernel.spawn(self._net_pump(host), name=f"pump{host}")

    # -- PE-side primitives ------------------------------------------------------

    def compute(self, pe: int, ops: int = 1):
        self.stats.ops_executed += ops
        yield self.cpus[pe].compute(ops * self.params.add_time)

    def _ask(self, pe: int, request: tuple):
        """Send a request into the local daemon and await the reply."""
        self.stats.messages_sent += 1
        yield self.cpus[pe].compute(self.params.syscall + self.params.pipe_transfer)
        self.daemon_inbox[pe].put(("req", pe) + request)
        reply = yield self.pe_inbox[pe].get()
        yield self.cpus[pe].compute(self.params.context_switch)
        return reply

    def lds(self, pe: int, name: str):
        value = yield from self._ask(pe, ("lds", name))
        return value

    def sts(self, pe: int, name: str, value: Any):
        yield from self._ask(pe, ("sts", name, value))

    def publish(self, pe: int, name: str, value: Any):
        yield from self._ask(pe, ("publish", name, value))

    def ldd(self, pe: int, owner: int, name: str):
        value = yield from self._ask(pe, ("ldd", owner, name))
        return value

    def barrier(self, pe: int):
        yield from self._ask(pe, ("wait",))

    # -- daemons --------------------------------------------------------------------

    def _daemon(self, host: int):
        """The per-host daemon: mediates every message (the PVM design)."""
        master = 0
        while True:
            msg = yield self.daemon_inbox[host].get()
            self.daemon_hops += 1
            # Daemon wakes, reads, unmarshals, routes: context switch +
            # syscall + protocol processing.
            yield self.cpus[host].compute(
                self.params.context_switch + self.params.syscall
                + self.marshal_overhead)
            kind = msg[0]
            if kind == "req":
                _, pe, *request = msg
                if host == master:
                    yield from self._serve(host, pe, tuple(request))
                else:
                    # Forward to the master daemon over the wire.
                    yield self.cpus[host].compute(self.net.send_overhead)
                    self.net_link[master].put(("fwd", host, pe) + tuple(request))
            elif kind == "fwd":
                _, origin_host, pe, *request = msg
                yield from self._serve(origin_host, pe, tuple(request))
            elif kind == "rep":
                _, pe, value = msg
                yield self.cpus[host].compute(self.params.pipe_transfer)
                self.pe_inbox[pe].put(value)
            else:  # pragma: no cover - internal protocol
                raise RuntimeError(f"daemon {host}: unknown {msg!r}")

    def _net_pump(self, host: int):
        """Deliver wire traffic into the host's daemon inbox."""
        while True:
            msg = yield self.net_link[host].get()
            self.daemon_inbox[host].put(msg)

    def _serve(self, origin_host: int, pe: int, request: tuple):
        """Master-daemon service of one request; reply goes back via the
        origin host's daemon (never directly to the PE)."""
        kind = request[0]
        if kind == "lds":
            value = self.mono.get(request[1], 0)
        elif kind == "sts":
            self.mono[request[1]] = request[2]
            value = "ok"
        elif kind == "publish":
            self.published[(pe, request[1])] = request[2]
            value = "ok"
        elif kind == "ldd":
            value = self.published.get((request[1], request[2]), 0)
        elif kind == "wait":
            self._barrier_waiting.append(pe)
            if len(self._barrier_waiting) == self.n_pes:
                waiting, self._barrier_waiting = self._barrier_waiting, []
                self.stats.barriers_completed += 1
                for waiter in waiting:
                    yield from self._reply(waiter, "barrier-open")
            return
        else:  # pragma: no cover
            raise RuntimeError(f"unknown request {request!r}")
        yield from self._reply(pe, value, origin_host)

    def _reply(self, pe: int, value: Any, origin_host: int | None = None):
        host = origin_host if origin_host is not None else pe
        master = 0
        yield self.cpus[master].compute(self.net.send_overhead)
        if host == master:
            self.daemon_inbox[master].put(("rep", pe, value))
        else:
            self.net_link[host].put(("rep", pe, value))
