"""The pipe-based execution model (§3.2.1).

n+1 processes: n PEs and one control process.  All PEs send packets into a
single shared request pipe; the control process answers each PE on its own
reply pipe (so the server needs no polling).  A PE performing a blocking
read sleeps until the control process writes — each such sleep/wake pair
costs a context switch, which is why LdS here costs "two reads, two writes,
and two process context switches" (§3.2.2's comparison).

Parallel subscripting is supported but deliberately slow: the control
process cannot interrupt a PE, so a request for PE *p*'s poly value parks
until *p* next communicates with the control process for some other reason
(§3.2.1: "programs making use of parallel subscripting probably should not
be run using this execution model").

The *real-transport* counterpart of this control-process/request-pipe shape
is the induction service (:mod:`repro.service`): one shared stream carries
framed requests to a supervising parent, which answers each caller on its
own connection.
"""

from __future__ import annotations

from typing import Any

from repro.events import Channel, Kernel
from repro.models.base import BaseExecutionModel, UnixBoxParams

__all__ = ["PipeModel"]


class PipeModel(BaseExecutionModel):
    """Control process + per-PE reply pipes over one shared request pipe."""

    def __init__(self, kernel: Kernel, params: UnixBoxParams, n_pes: int):
        super().__init__(kernel, params, n_pes)
        self.request_pipe = Channel(kernel, name="requests")
        self.reply_pipes = [Channel(kernel, name=f"reply{pe}") for pe in range(n_pes)]
        self.mono: dict[str, Any] = {}
        self.poly_published: dict[tuple[int, str], Any] = {}
        self._waiting_at_barrier: list[int] = []
        self._deaths = 0
        #: parked parallel-subscript requests: owner pe -> [(requester, name)]
        self._parked_ldd: dict[int, list[tuple[int, str]]] = {}
        self._control = kernel.spawn(self._control_loop(), name="control")

    # -- packet plumbing -------------------------------------------------------

    def _send_request(self, pe: int, packet: tuple):
        """One atomic packet write into the shared pipe (§3.2.1)."""
        self.stats.messages_sent += 1
        yield self.cpu.compute(self.params.syscall + self.params.pipe_transfer)
        self.request_pipe.put(packet)

    def _blocking_reply(self, pe: int):
        """Blocking read on this PE's reply pipe (sleep + wake switch)."""
        value = yield self.reply_pipes[pe].get()
        yield self.cpu.compute(self.params.context_switch)
        return value

    def _reply(self, pe: int, value: Any):
        """Control-side write of a reply packet."""
        yield self.cpu.compute(self.params.pipe_transfer)
        self.reply_pipes[pe].put(value)

    # -- PE-side primitives ----------------------------------------------------------

    def lds(self, pe: int, name: str):
        """Mono load: request packet + blocking reply."""
        yield from self._send_request(pe, ("lds", pe, name))
        value = yield from self._blocking_reply(pe)
        return value

    def sts(self, pe: int, name: str, value: Any):
        """Mono store: one-way packet (no acknowledgement needed)."""
        yield from self._send_request(pe, ("sts", pe, name, value))

    def publish(self, pe: int, name: str, value: Any):
        """Record this PE's poly value so others may parallel-subscript it.

        In the real model the value lives in the PE's own memory; here the
        control process proxies it, which is exactly why LdD is slow.
        """
        yield from self._send_request(pe, ("publish", pe, name, value))

    def ldd(self, pe: int, owner: int, name: str):
        """Parallel subscript: read PE ``owner``'s poly ``name``.

        Parks at the control process until the owner next communicates.
        """
        yield from self._send_request(pe, ("ldd", pe, owner, name))
        value = yield from self._blocking_reply(pe)
        return value

    def barrier(self, pe: int):
        """Send a wait packet, then sleep on the reply pipe (§3.2.1)."""
        yield from self._send_request(pe, ("wait", pe))
        yield from self._blocking_reply(pe)

    def shutdown(self, pe: int):
        """The "death" packet the control process tallies (§3.2.1)."""
        yield from self._send_request(pe, ("death", pe))

    # -- the control process -------------------------------------------------------

    def _control_loop(self):
        while self._deaths < self.n_pes:
            packet = yield self.request_pipe.get()
            # Waking up to service a packet costs the control process a
            # context switch plus the read syscall.
            yield self.cpu.compute(self.params.context_switch + self.params.syscall)
            kind = packet[0]
            if kind == "lds":
                _, pe, name = packet
                yield from self._reply(pe, self.mono.get(name, 0))
            elif kind == "sts":
                _, pe, name, value = packet
                self.mono[name] = value
            elif kind == "publish":
                _, pe, name, value = packet
                self.poly_published[(pe, name)] = value
            elif kind == "ldd":
                _, pe, owner, name = packet
                if (owner, name) in self.poly_published:
                    yield from self._reply(
                        pe, self.poly_published[(owner, name)])
                else:
                    self._parked_ldd.setdefault(owner, []).append((pe, name))
            elif kind == "wait":
                _, pe = packet
                self._waiting_at_barrier.append(pe)
                if len(self._waiting_at_barrier) == self.n_pes - self._deaths:
                    for waiter in self._waiting_at_barrier:
                        yield from self._reply(waiter, "barrier-open")
                    self._waiting_at_barrier.clear()
                    self.stats.barriers_completed += 1
            elif kind == "death":
                _, pe = packet
                self._deaths += 1
                # A dead PE can no longer block a barrier.
                if (self._waiting_at_barrier
                        and len(self._waiting_at_barrier)
                        == self.n_pes - self._deaths):
                    for waiter in self._waiting_at_barrier:
                        yield from self._reply(waiter, "barrier-open")
                    self._waiting_at_barrier.clear()
                    self.stats.barriers_completed += 1
            else:  # pragma: no cover - internal protocol
                raise RuntimeError(f"control: unknown packet {packet!r}")
            # Serve parked LdD requests whose owner just communicated.
            owner = packet[1]
            for requester, name in self._parked_ldd.pop(owner, []):
                yield from self._reply(
                    requester, self.poly_published.get((owner, name), 0))
