"""Shared parameter sets and the execution-model base class."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.events import Kernel, SharedCPU

__all__ = ["BaseExecutionModel", "ExecutionStats", "NetworkParams", "UnixBoxParams"]


@dataclass(frozen=True)
class UnixBoxParams:
    """Timing constants of one UNIX host (seconds).

    Defaults are in the ballpark of the supplied text's Table 1 for a
    circa-1992 workstation: a basic interpreted operation takes ~1 µs, a
    context switch ~100 µs, file-block operations tens of µs (UNIX buffers
    file blocks in memory, §3.2.2).
    """

    name: str = "generic-unix"
    cores: int = 1
    add_time: float = 1.0e-6      # one basic interpreted operation (ADD)
    context_switch: float = 1.0e-4
    syscall: float = 2.0e-5
    pipe_transfer: float = 3.0e-5  # one packet write into a pipe buffer
    file_seek: float = 2.0e-5
    file_read: float = 3.0e-5
    file_write: float = 5.0e-5
    poll_interval: float = 5.0e-4  # shared-file barrier polling backoff

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"{self.name}: need at least one core")
        for f in ("add_time", "context_switch", "syscall", "pipe_transfer",
                  "file_seek", "file_read", "file_write", "poll_interval"):
            if getattr(self, f) <= 0:
                raise ValueError(f"{self.name}: {f} must be positive")


@dataclass(frozen=True)
class NetworkParams:
    """Ethernet/UDP timing (§3.3)."""

    latency: float = 1.5e-4        # one-way wire+stack latency
    jitter: float = 5.0e-5         # uniform +/- jitter on latency
    loss: float = 0.0              # datagram loss probability
    send_overhead: float = 5.0e-5  # sendto syscall + signal-driven recv
    retransmit_timeout: float = 5.0e-3

    def __post_init__(self) -> None:
        if self.latency <= 0 or self.send_overhead <= 0:
            raise ValueError("latency and send_overhead must be positive")
        if self.jitter < 0 or self.jitter >= self.latency:
            raise ValueError("jitter must be in [0, latency)")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss probability {self.loss} outside [0, 1)")
        if self.retransmit_timeout <= self.latency * 2:
            raise ValueError("retransmit timeout must exceed a round trip")


@dataclass
class ExecutionStats:
    """Per-run accounting common to all models."""

    ops_executed: int = 0
    messages_sent: int = 0
    barriers_completed: int = 0
    finish_times: dict[int, float] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return max(self.finish_times.values()) if self.finish_times else 0.0


class BaseExecutionModel:
    """Common plumbing: a kernel, a per-machine shared CPU, stats.

    Subclasses implement the primitives as generators that yield kernel
    commands; ``run`` drives one script per PE to completion.
    """

    def __init__(self, kernel: Kernel, params: UnixBoxParams, n_pes: int):
        if n_pes < 1:
            raise ValueError(f"need at least one PE, got {n_pes}")
        self.kernel = kernel
        self.params = params
        self.n_pes = n_pes
        self.cpu = SharedCPU(kernel, cores=params.cores)
        self.stats = ExecutionStats()

    # -- common primitives ----------------------------------------------------

    def compute(self, pe: int, ops: int = 1):
        """Execute ``ops`` basic operations worth of compute on this host.

        Contends for the host CPU (processor sharing), so co-resident PE
        processes and background load slow each other down.
        """
        self.stats.ops_executed += ops
        yield self.cpu.compute(ops * self.params.add_time)

    def _pe_done(self, pe: int):
        self.stats.finish_times[pe] = self.kernel.now
        return
        yield  # pragma: no cover - marks this as a generator

    # -- driver -------------------------------------------------------------------

    def run(self, scripts, until: float | None = None) -> ExecutionStats:
        """Run one script per PE to completion; returns the stats.

        ``scripts`` is either a single generator function applied to every
        PE or a list of per-PE generator functions.
        """
        if callable(scripts):
            scripts = [scripts] * self.n_pes
        if len(scripts) != self.n_pes:
            raise ValueError(f"{len(scripts)} scripts for {self.n_pes} PEs")

        def wrap(script, pe):
            yield from self.startup(pe)
            yield from script(self, pe)
            yield from self.shutdown(pe)
            self.stats.finish_times[pe] = self.kernel.now

        for pe, script in enumerate(scripts):
            self.kernel.spawn(wrap(script, pe), name=f"pe{pe}")
        self.kernel.run(until=until)
        missing = set(range(self.n_pes)) - set(self.stats.finish_times)
        if missing:
            raise RuntimeError(f"PEs {sorted(missing)} never finished "
                               f"(deadlocked model?)")
        return self.stats

    # -- hooks ---------------------------------------------------------------------

    def startup(self, pe: int):
        """Per-PE setup before the script runs (default: nothing)."""
        return
        yield  # pragma: no cover

    def shutdown(self, pe: int):
        """Per-PE teardown after the script ends (default: nothing)."""
        return
        yield  # pragma: no cover
