"""The UDP-socket distributed execution model (§3.3).

Every PE process owns one socket; there are no daemons and no control
process.  Communication is signal-driven: a handler coroutine per PE serves
incoming datagrams (answering mono/poly requests against PE-local state)
while the main script runs — the simulation twin of the compiler-generated
"fairly complex signal-driven event handling code".

Datagram realities modeled: one-way latency with jitter (hence reordering),
independent loss, and retransmission timers on every request/reply exchange.
Mono variables are each assigned to an owner PE (deterministic hash) and
accessed with the same request/reply mechanism as parallel subscripting.

Two barrier algorithms (E9):

- ``plain`` — the usual n² method: broadcast "I arrived", wait to hear an
  arrival from everyone, rebroadcast on a timer until complete;
- ``gossip`` — the AHS variation: messages carry *bitmasks summarizing
  which PEs the sender knows have arrived*, and replies carry the merged
  mask back, so one message from b can tell c about a — knowledge spreads
  transitively and recognition delay shrinks.

See :mod:`repro.service.protocol` for the real (non-simulated) transport
that reuses this pipe-vs-datagram address split for induction requests.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.events import Channel, Event, Kernel, SharedCPU
from repro.models.base import BaseExecutionModel, NetworkParams, UnixBoxParams
from repro.util.rng import make_rng

__all__ = ["BarrierStats", "UDPModel"]


@dataclass
class BarrierStats:
    """Accounting for one barrier episode."""

    algorithm: str
    messages: int = 0
    started_at: float = 0.0
    completed_at: float = 0.0

    @property
    def duration(self) -> float:
        return self.completed_at - self.started_at


@dataclass
class _PEState:
    mono: dict[str, Any] = field(default_factory=dict)
    published: dict[str, Any] = field(default_factory=dict)
    pending: dict[int, Event] = field(default_factory=dict)
    seen_requests: set[int] = field(default_factory=set)
    #: barrier round -> bitmask of PEs known to have arrived
    bar_masks: dict[int, int] = field(default_factory=dict)
    bar_done: dict[int, Event] = field(default_factory=dict)
    round: int = 0


class UDPModel(BaseExecutionModel):
    """Distributed PEs over a lossy datagram network."""

    def __init__(self, kernel: Kernel, params: UnixBoxParams, n_pes: int,
                 net: NetworkParams | None = None,
                 seed: int | np.random.Generator | None = 0,
                 barrier_algorithm: str = "gossip"):
        super().__init__(kernel, params, n_pes)
        if barrier_algorithm not in ("gossip", "plain"):
            raise ValueError(f"unknown barrier algorithm {barrier_algorithm!r}")
        self.net = net or NetworkParams()
        self.rng = make_rng(seed)
        self.barrier_algorithm = barrier_algorithm
        self.sockets = [Channel(kernel, name=f"sock{pe}") for pe in range(n_pes)]
        self.pe_state = [_PEState() for _ in range(n_pes)]
        # Distributed PEs each run on their own host.
        self.cpus = [SharedCPU(kernel, cores=params.cores) for _ in range(n_pes)]
        self._next_reqid = 0
        self.datagrams_sent = 0
        self.datagrams_lost = 0
        self.barrier_log: list[BarrierStats] = []
        self._episodes: dict[int, BarrierStats] = {}
        self._episode_returns: dict[int, int] = {}
        for pe in range(n_pes):
            kernel.spawn(self._handler(pe), name=f"udp-handler{pe}")

    # -- host CPU override (each PE has its own box) -----------------------------

    def compute(self, pe: int, ops: int = 1):
        self.stats.ops_executed += ops
        yield self.cpus[pe].compute(ops * self.params.add_time)

    # -- the wire ---------------------------------------------------------------

    def owner_of(self, name: str) -> int:
        """Deterministic mono-variable placement."""
        return zlib.crc32(name.encode()) % self.n_pes

    def _send(self, src: int, dst: int, msg: tuple):
        """Transmit one datagram (may be lost; arrives with jitter)."""
        self.datagrams_sent += 1
        self.stats.messages_sent += 1
        if msg[0] in ("bar", "arr"):
            episode = self._episodes.get(msg[1])
            if episode is not None:
                episode.messages += 1
        yield self.cpus[src].compute(self.net.send_overhead)
        if float(self.rng.random()) < self.net.loss:
            self.datagrams_lost += 1
            return
        delay = self.net.latency + float(self.rng.uniform(-1, 1)) * self.net.jitter
        self.kernel.call_later(max(delay, 1e-9), self.sockets[dst].put, (src, msg))

    def _request(self, pe: int, dst: int, kind: str, *payload):
        """Reliable request/reply with retransmission; returns the reply."""
        self._next_reqid += 1
        reqid = self._next_reqid
        done = Event(self.kernel)
        self.pe_state[pe].pending[reqid] = done
        attempts = 0
        while not done.triggered:
            yield from self._send(pe, dst, (kind, reqid, pe) + payload)
            attempts += 1
            if attempts > 200:
                raise RuntimeError(f"PE {pe}: request to {dst} never answered")
            timer = Event(self.kernel)
            self.kernel.call_later(self.net.retransmit_timeout, self._expire, timer)
            # Race the reply against the retransmit timer.
            yield self._first_of(done, timer)
        del self.pe_state[pe].pending[reqid]
        return done.value

    def _expire(self, timer: Event) -> None:
        if not timer.triggered:
            timer.succeed(None)

    def _first_of(self, a: Event, b: Event) -> Event:
        """Event that fires when either input fires."""
        combo = Event(self.kernel)

        def forward(value):
            if not combo.triggered:
                combo.succeed(value)

        for ev in (a, b):
            if ev.triggered:
                self.kernel.call_soon(forward, ev.value)
            else:
                ev._waiters.append(_Waiter(forward))
        return combo

    # -- primitives --------------------------------------------------------------

    def lds(self, pe: int, name: str):
        """Mono load: local if this PE owns it, else request/reply."""
        owner = self.owner_of(name)
        if owner == pe:
            yield from self.compute(pe, 1)
            return self.pe_state[pe].mono.get(name, 0)
        value = yield from self._request(pe, owner, "lds_req", name)
        return value

    def sts(self, pe: int, name: str, value: Any):
        """Mono store: acknowledged so a lost datagram cannot drop it."""
        owner = self.owner_of(name)
        if owner == pe:
            yield from self.compute(pe, 1)
            self.pe_state[pe].mono[name] = value
            return
        yield from self._request(pe, owner, "sts_req", name, value)

    def publish(self, pe: int, name: str, value: Any):
        """Expose a poly value for parallel subscripting (PE-local)."""
        yield from self.compute(pe, 1)
        self.pe_state[pe].published[name] = value

    def ldd(self, pe: int, owner: int, name: str):
        """Parallel subscript: direct PE-to-PE request (§3.3 — handled by
        signals, "reasonably efficient")."""
        if owner == pe:
            yield from self.compute(pe, 1)
            return self.pe_state[pe].published.get(name, 0)
        value = yield from self._request(pe, owner, "ldd_req", name)
        return value

    # -- barriers ---------------------------------------------------------------------

    def barrier(self, pe: int):
        if self.barrier_algorithm == "gossip":
            yield from self._barrier_gossip(pe)
        else:
            yield from self._barrier_plain(pe)

    def _begin_barrier_stats(self, rnd: int) -> BarrierStats:
        episode = self._episodes.get(rnd)
        if episode is None:
            episode = BarrierStats(algorithm=self.barrier_algorithm,
                                   started_at=self.kernel.now)
            self._episodes[rnd] = episode
            self._episode_returns[rnd] = 0
            self.barrier_log.append(episode)
        return episode

    def _bar_state(self, pe: int, rnd: int) -> tuple[int, Event]:
        st = self.pe_state[pe]
        if rnd not in st.bar_masks:
            st.bar_masks[rnd] = 0
            st.bar_done[rnd] = Event(self.kernel)
        return st.bar_masks[rnd], st.bar_done[rnd]

    def _merge_mask(self, pe: int, rnd: int, bits: int) -> bool:
        """OR ``bits`` into pe's round mask; returns True if info was new."""
        old, done = self._bar_state(pe, rnd)
        new = old | bits
        self.pe_state[pe].bar_masks[rnd] = new
        full = (1 << self.n_pes) - 1
        if new == full and not done.triggered:
            done.succeed(None)
        return new != old

    def _barrier_gossip(self, pe: int):
        st = self.pe_state[pe]
        rnd = st.round
        st.round += 1
        stats = self._begin_barrier_stats(rnd)
        self._merge_mask(pe, rnd, 1 << pe)
        _, done = self._bar_state(pe, rnd)
        full = (1 << self.n_pes) - 1
        # Announce to everyone once (acks carry back what they know), then
        # retransmit only toward PEs we still haven't heard about.
        first = True
        while not done.triggered:
            mask = st.bar_masks[rnd]
            for other in range(self.n_pes):
                if other == pe:
                    continue
                if first or not (mask >> other) & 1:
                    yield from self._send(pe, other, ("bar", rnd, pe, mask))
            first = False
            timer = Event(self.kernel)
            self.kernel.call_later(self.net.retransmit_timeout, self._expire, timer)
            yield self._first_of(done, timer)
        self._finish_barrier(rnd)

    def _barrier_plain(self, pe: int):
        st = self.pe_state[pe]
        rnd = st.round
        st.round += 1
        stats = self._begin_barrier_stats(rnd)
        self._merge_mask(pe, rnd, 1 << pe)
        _, done = self._bar_state(pe, rnd)
        while not done.triggered:
            for other in range(self.n_pes):
                if other != pe:
                    # Plain n2: the message carries only this PE's arrival.
                    yield from self._send(pe, other, ("arr", rnd, pe, False))
            timer = Event(self.kernel)
            self.kernel.call_later(self.net.retransmit_timeout, self._expire, timer)
            yield self._first_of(done, timer)
        self._finish_barrier(rnd)

    def _finish_barrier(self, rnd: int) -> None:
        episode = self._episodes[rnd]
        episode.completed_at = max(episode.completed_at, self.kernel.now)
        self._episode_returns[rnd] += 1
        if self._episode_returns[rnd] == self.n_pes:
            self.stats.barriers_completed += 1

    # -- the signal-driven handler -----------------------------------------------------

    def _handler(self, pe: int):
        st = self.pe_state[pe]
        while True:
            src, msg = yield self.sockets[pe].get()
            yield self.cpus[pe].compute(self.net.send_overhead)  # signal handling
            kind = msg[0]
            if kind == "lds_req":
                _, reqid, requester, name = msg
                yield from self._send(pe, src, ("rep", reqid,
                                                st.mono.get(name, 0)))
            elif kind == "sts_req":
                _, reqid, requester, name, value = msg
                if reqid not in st.seen_requests:
                    st.seen_requests.add(reqid)
                    st.mono[name] = value
                yield from self._send(pe, src, ("rep", reqid, "ok"))
            elif kind == "ldd_req":
                _, reqid, requester, name = msg
                yield from self._send(pe, src, ("rep", reqid,
                                                st.published.get(name, 0)))
            elif kind == "rep":
                _, reqid, value = msg
                ev = st.pending.get(reqid)
                if ev is not None and not ev.triggered:
                    ev.succeed(value)
            elif kind == "bar":
                _, rnd, sender, bits = msg
                had_news = self._merge_mask(pe, rnd, bits)
                my_mask = st.bar_masks[rnd]
                if (bits | my_mask) != bits:
                    # Ack carries information (§3.3): tell the sender what
                    # we know that it did not.
                    yield from self._send(pe, src, ("bar", rnd, pe, my_mask))
            elif kind == "arr":
                _, rnd, sender, is_ack = msg
                self._merge_mask(pe, rnd, 1 << sender)
                # Acknowledge a fresh announcement with our own arrival (if
                # any) so a PE that stopped broadcasting can still be
                # learned about after losses; never ack an ack.
                if not is_ack and (st.bar_masks.get(rnd, 0) >> pe) & 1:
                    yield from self._send(pe, src, ("arr", rnd, pe, True))
            else:  # pragma: no cover - internal protocol
                raise RuntimeError(f"PE {pe}: unknown datagram {msg!r}")


class _Waiter:
    """Adapter letting a plain callback sit in an Event's waiter list."""

    def __init__(self, fn):
        self._fn = fn

    def _resume(self, value):
        self._fn(value)
