"""High-level CSI entry point.

:func:`induce` runs the chosen induction method on a region, verifies the
resulting schedule against the independent checker, and reports its cost
next to the serialization baseline, so callers get a paper-style
"speedup over serial MIMD emulation" number out of one call.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.anneal import anneal_schedule
from repro.core.costmodel import CostModel
from repro.core.dag import build_dags
from repro.core.factor import factor_schedule
from repro.core.greedy import greedy_schedule
from repro.core.ops import Region
from repro.core.schedule import Schedule
from repro.core.search import SearchConfig, SearchStats, branch_and_bound
from repro.core.serial import lockstep_schedule, serial_schedule
from repro.core.verify import verify_schedule

__all__ = ["InductionResult", "METHODS", "induce"]

METHODS = ("search", "greedy", "anneal", "factor", "lockstep", "serial")


@dataclass(frozen=True)
class InductionResult:
    """Outcome of one induction run."""

    method: str
    schedule: Schedule
    cost: float
    serial_cost: float
    lockstep_cost: float
    stats: SearchStats | None = None

    @property
    def speedup_vs_serial(self) -> float:
        """Paper-style speedup: serialized-MIMD time / induced time."""
        return self.serial_cost / self.cost if self.cost else float("inf")

    @property
    def speedup_vs_lockstep(self) -> float:
        """Speedup over the naive lockstep interpreter schedule."""
        return self.lockstep_cost / self.cost if self.cost else float("inf")


def induce(
    region: Region,
    model: CostModel,
    method: str = "search",
    config: SearchConfig | None = None,
    verify: bool = True,
) -> InductionResult:
    """Run CSI (``method='search'``) or a baseline on ``region``.

    Methods: ``search`` (branch-and-bound CSI), ``greedy`` (list-scheduling
    heuristic), ``anneal`` (simulated annealing over op priorities),
    ``factor`` (common prefix/suffix hand-factoring), ``lockstep`` (naive
    interpreter), ``serial`` (thread-at-a-time).

    With ``verify=True`` (default) the schedule is checked by the
    independent verifier before being returned; an invalid schedule is a
    library bug and raises :class:`repro.core.verify.ScheduleError`.
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; expected one of {METHODS}")

    respect_order = bool(config and config.respect_order)
    stats: SearchStats | None = None
    if method == "search":
        schedule, stats = branch_and_bound(region, model, config)
    elif method == "greedy":
        schedule = greedy_schedule(region, model, respect_order=respect_order)
    elif method == "anneal":
        schedule, _astats = anneal_schedule(region, model,
                                            respect_order=respect_order)
    elif method == "factor":
        schedule = factor_schedule(region, model)
    elif method == "lockstep":
        schedule = lockstep_schedule(region, model)
    else:
        schedule = serial_schedule(region, model)

    if verify:
        # Baselines built in program order are valid under any dependence
        # structure; reordering methods are checked against the real DAGs.
        dags = build_dags(region, respect_order=respect_order)
        verify_schedule(schedule, region, model, dags=dags)

    serial_cost = serial_schedule(region, model).cost(model)
    lockstep_cost = lockstep_schedule(region, model).cost(model)
    return InductionResult(
        method=method,
        schedule=schedule,
        cost=schedule.cost(model),
        serial_cost=serial_cost,
        lockstep_cost=lockstep_cost,
        stats=stats,
    )
