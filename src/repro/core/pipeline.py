"""High-level CSI entry point.

:func:`induce` runs the chosen induction method on a region, verifies the
resulting schedule against the independent checker, and reports its cost
next to the serialization baseline, so callers get a paper-style
"speedup over serial MIMD emulation" number out of one call.

The entry point is also where the induction *service* features attach:

- pass a :class:`repro.core.cache.ScheduleCache` to memoize finished
  schedules under a content fingerprint of (region, model, config, method)
  — repeated regions, the common case for interpreter handler sets, then
  return in O(lookup) instead of re-running the exponential search;
- pass a :class:`repro.obs.Tracer` to get one structured trace event per
  call (search counters, costs, cache disposition, wall time).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.anneal import anneal_schedule
from repro.core.cache import ScheduleCache, region_fingerprint
from repro.core.costmodel import CostModel
from repro.core.dag import build_dags
from repro.core.deprecation import warn_once
from repro.core.factor import factor_schedule
from repro.core.greedy import greedy_schedule
from repro.core.ops import Region
from repro.core.result import ResultBase
from repro.core.schedule import Schedule
from repro.core.search import SearchConfig, SearchStats, branch_and_bound
from repro.core.serial import lockstep_schedule, serial_schedule
from repro.core.verify import verify_schedule
from repro.core.vn import vn_prepass
from repro.obs import NULL_TRACER, StopWatch, Tracer, span
from repro.obs.metrics import get_registry, observe_search_throughput
from repro.util.rng import resolve_seed

__all__ = ["InductionResult", "METHODS", "induce"]

METHODS = ("search", "greedy", "anneal", "factor", "lockstep", "serial")


@dataclass(frozen=True)
class InductionResult(ResultBase):
    """Outcome of one induction run (unified result protocol)."""

    method: str
    schedule: Schedule
    cost: float
    serial_cost: float
    lockstep_cost: float
    stats: SearchStats | None = None
    cache_hit: bool = False
    wall_s: float = 0.0
    degraded: bool = False

    kind = "induce"


def _build_schedule(
    region: Region,
    model: CostModel,
    method: str,
    config: SearchConfig | None,
) -> tuple[Schedule, SearchStats | None]:
    respect_order = bool(config and config.respect_order)
    stats: SearchStats | None = None
    if method == "search":
        schedule, stats = branch_and_bound(region, model, config)
    elif method == "greedy":
        schedule = greedy_schedule(region, model, respect_order=respect_order)
    elif method == "anneal":
        # Resolve the seed here (explicit None -> $REPRO_SEED -> 0) so the
        # single seed knob reaches the annealer like every other RNG user.
        schedule, _astats = anneal_schedule(region, model,
                                            seed=resolve_seed(default=0),
                                            respect_order=respect_order)
    elif method == "factor":
        schedule = factor_schedule(region, model)
    elif method == "lockstep":
        schedule = lockstep_schedule(region, model)
    else:
        schedule = serial_schedule(region, model)
    return schedule, stats


def induce(
    region: Region,
    model: CostModel,
    method: str = "search",
    config: SearchConfig | None = None,
    verify: bool = True,
    cache: ScheduleCache | None = None,
    tracer: Tracer | None = None,
) -> InductionResult:
    """Deprecated positional entry point; use :func:`repro.api.induce`.

    Behaves exactly like the original ``induce`` and warns once per
    process.  New code should build a :class:`repro.api.InductionRequest`
    and call :func:`repro.api.induce`, which routes between one-shot,
    windowed and service execution.
    """
    warn_once(
        "core.induce",
        "repro.core.induce(region, model, ...) is deprecated; build a "
        "repro.api.InductionRequest and call repro.api.induce(request)",
    )
    return _induce_impl(region, model, method=method, config=config,
                        verify=verify, cache=cache, tracer=tracer)


def _induce_impl(
    region: Region,
    model: CostModel,
    method: str = "search",
    config: SearchConfig | None = None,
    verify: bool = True,
    cache: ScheduleCache | None = None,
    tracer: Tracer | None = None,
    vn: str = "off",
) -> InductionResult:
    """Run CSI (``method='search'``) or a baseline on ``region``.

    Methods: ``search`` (branch-and-bound CSI), ``greedy`` (list-scheduling
    heuristic), ``anneal`` (simulated annealing over op priorities),
    ``factor`` (common prefix/suffix hand-factoring), ``lockstep`` (naive
    interpreter), ``serial`` (thread-at-a-time).

    With ``verify=True`` (default) a freshly computed schedule is checked by
    the independent verifier before being returned; an invalid schedule is a
    library bug and raises :class:`repro.core.verify.ScheduleError`.  Cache
    hits return the previously verified schedule without re-checking — that
    skip is the point of the cache.

    ``cache`` memoizes (schedule, stats) under a content fingerprint;
    ``tracer`` receives one ``induce`` event per call.  ``vn`` runs the
    value-numbering pre-pass (:func:`repro.core.vn.vn_prepass`) on the
    region first; everything downstream — fingerprinting, search,
    verification, baselines — sees the rewritten region.
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; expected one of {METHODS}")
    tracer = tracer or NULL_TRACER
    metrics = get_registry()
    watch = StopWatch().start()

    with span("induce", tracer, method=method, ops=region.num_ops) as live:
        vnstats = None
        if vn != "off":
            region, vnstats = vn_prepass(region, model, vn, tracer)
        fingerprint = None
        schedule: Schedule | None = None
        stats: SearchStats | None = None
        if cache is not None:
            fingerprint = region_fingerprint(region, model, config,
                                             method=method)
            hit = cache.get(fingerprint)
            if hit is not None:
                schedule, stats = hit
        cache_hit = schedule is not None

        if schedule is None:
            with span("induce.build", tracer, method=method):
                schedule, stats = _build_schedule(region, model, method, config)
            if verify:
                # Baselines built in program order are valid under any
                # dependence structure; reordering methods are checked
                # against the real DAGs.
                with span("induce.verify", tracer):
                    respect_order = bool(config and config.respect_order)
                    dags = build_dags(region, respect_order=respect_order)
                    verify_schedule(schedule, region, model, dags=dags)
            if cache is not None:
                cache.put(fingerprint, schedule, stats)

        if vnstats is not None and stats is not None:
            # Copy-on-write: cached stats objects are shared (and the
            # cache key is the post-vn region, which a vn=off request on
            # an already-canonical region also hits), so never mutate the
            # stored object with this request's vn counters.
            stats = dataclasses.replace(
                stats,
                vn_merged_candidates=vnstats.merged_candidates,
                vn_rewrites=vnstats.rewrites)

        cost = schedule.cost(model)
        # Reuse the schedule we just built when it *is* the baseline, and pay
        # each baseline construction exactly once.
        serial_cost = cost if method == "serial" else \
            serial_schedule(region, model).cost(model)
        lockstep_cost = cost if method == "lockstep" else \
            lockstep_schedule(region, model).cost(model)
        wall_s = watch.stop()
        live.set(cost=cost,
                 cache="hit" if cache_hit
                 else ("miss" if cache is not None else "off"))

    metrics.inc("induce_total")
    metrics.observe("induce_wall_seconds", wall_s)
    if cache_hit:
        metrics.inc("induce_cache_hits_total")
    elif method == "search" and stats is not None:
        metrics.observe("search_wall_seconds", stats.wall_s or wall_s)
        observe_search_throughput(metrics, stats)

    if tracer.enabled:
        event: dict = {
            "method": method,
            "threads": region.num_threads,
            "ops": region.num_ops,
            "slots": len(schedule),
            "cost": cost,
            "serial_cost": serial_cost,
            "lockstep_cost": lockstep_cost,
            "cache": "hit" if cache_hit else ("miss" if cache is not None else "off"),
            "wall_s": wall_s,
        }
        if vnstats is not None:
            event.update(
                vn=vnstats.mode,
                vn_applied=vnstats.applied,
                vn_rewrites=vnstats.rewrites,
                vn_merged_candidates=vnstats.merged_candidates,
            )
        if stats is not None:
            event.update(
                engine=stats.engine,
                nodes_per_s=round(stats.nodes_per_second, 1),
                nodes=stats.nodes_expanded,
                pruned_bound=stats.pruned_by_bound,
                pruned_memo=stats.pruned_by_memo,
                incumbent_updates=stats.incumbent_updates,
                optimal=stats.optimal,
                budget_exhausted=stats.budget_exhausted,
            )
        tracer.emit("induce", **event)

    return InductionResult(
        method=method,
        schedule=schedule,
        cost=cost,
        serial_cost=serial_cost,
        lockstep_cost=lockstep_cost,
        stats=stats,
        cache_hit=cache_hit,
        wall_s=wall_s,
    )
