"""Semantic hashing of region subexpressions for value numbering.

The chiquito-style CSE trick: instead of comparing expression *syntax*,
evaluate every subexpression under K pseudo-random input assignments over
the prime field Z_p (p = 2^61 - 1) and compare the value vectors.  Two
computations that agree on all K assignments are, with overwhelming
probability, the same function — so ``a+b`` and ``b+a`` and
differently-named temporaries that compute the same thing all collide,
which is exactly what :mod:`repro.core.vn` needs to discover cross-thread
merge candidates that a syntactic pass would miss.

The evaluator is deliberately *partial*: opcodes with algebraic laws the
value-numbering rewriter exploits (add/sub/neg/mul, shifts, and/or with
their zero identities) are interpreted over the field; everything else is
hashed as an uninterpreted function of its operand values.  Memory is
modelled with a per-thread store epoch — loads hash the address value and
the current epoch, stores and other side-effecting opcodes bump it — so a
load cannot be conflated across an intervening store, and side-effecting
ops are never considered equal unless their whole observable context
(opcode, operands, epoch) agrees.

All hashing is keyed by a *fixed* internal seed (``CANON_SEED``), not by
``$REPRO_SEED``: canonicalization must be deterministic and idempotent
regardless of the run's fuzz seed, or vn-rewritten regions would not be
cacheable.  ``$REPRO_SEED`` enters only through the differential oracle,
which mixes extra assignments in via :func:`regions_mismatch`'s ``seed``
parameter to sharpen its check beyond the rewriter's own K assignments.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping

from repro.core.ops import Operation, Region

__all__ = [
    "CANON_SEED",
    "COMMUTATIVE",
    "LOAD_OPCODES",
    "NUM_ASSIGNMENTS",
    "PRIME",
    "PURE_OPCODES",
    "ThreadEvaluator",
    "canonical_imm",
    "cross_thread_candidates",
    "imm_value",
    "op_fingerprints",
    "regions_mismatch",
]

#: The field: Z_p for the Mersenne prime 2^61 - 1.  Large enough that the
#: chance of two inequivalent expressions agreeing on one assignment is
#: ~2^-61, and K independent assignments push it to ~2^-(61*K).
PRIME = (1 << 61) - 1

#: Number of independent input assignments an expression is evaluated
#: under.  Fingerprints are the K-vector of values, so a spurious
#: collision needs agreement on all of them.
NUM_ASSIGNMENTS = 4

#: Fixed internal hashing key (see module docstring for why this is *not*
#: ``$REPRO_SEED``).
CANON_SEED = 0x5EED_C51_CA704

#: Opcodes whose result is a pure function of their operand values — the
#: only ops :mod:`repro.core.vn` will ever rewrite.  Everything else
#: (stores, control flow, unknown opcodes) is conservatively treated as
#: side-effecting.
PURE_OPCODES = frozenset({
    "mov", "add", "sub", "neg", "mul", "div", "mod", "shl", "shr",
    "and", "or", "not", "eq", "ne", "lt", "le", "gt", "ge", "cmp",
    "fadd", "fmul", "fdiv",
})

#: Loads: pure *given* the store epoch (they read memory, not just
#: registers).  Never rewritten, but fingerprinted so identical loads in
#: different threads collide.
LOAD_OPCODES = frozenset({"ld", "lds", "ldd"})

#: Opcodes whose operand order does not matter.  The rewriter sorts these
#: ops' reads into canonical order *on the authority of this table alone*
#: (integer add/mul/bitwise laws), with no per-op defensive value check —
#: which is what lets the mutation-smoke test inject a wrong-canonical-order
#: bug here and prove the differential oracle catches it.
COMMUTATIVE = frozenset({"add", "mul", "and", "or", "eq", "ne"})


def _h(*parts: object) -> int:
    """Keyed hash of ``parts`` into the field (never returns a key-free 0)."""
    digest = hashlib.blake2b(
        key=CANON_SEED.to_bytes(8, "little"), digest_size=16)
    for part in parts:
        digest.update(repr(part).encode())
        digest.update(b"\x1f")
    return int.from_bytes(digest.digest(), "little") % PRIME


def canonical_imm(imm: int | float | None) -> int | float | None:
    """Fold integral floats to int (``2.0`` -> ``2``).

    ``(cls, 2)`` and ``(cls, 2.0)`` already compare equal as merge keys
    (Python numeric equality), but the *cache* fingerprint distinguishes
    them — canonicalizing immediates therefore raises cache hit rates
    without changing mergeability.
    """
    if isinstance(imm, float) and not isinstance(imm, bool) \
            and imm == int(imm):
        return int(imm)
    return imm


def imm_value(imm: int | float) -> int:
    """Field value of an immediate operand.

    Integers (and integral floats) map to their residue mod p so algebraic
    identities hold exactly (``x * 2 == x << 1``); non-integral floats are
    hashed as opaque constants — distinct from every integer and from each
    other unless equal.
    """
    imm = canonical_imm(imm)
    if isinstance(imm, int) and not isinstance(imm, bool):
        return imm % PRIME
    return _h("float-imm", repr(imm))


class ThreadEvaluator:
    """Evaluate one thread's op sequence under one input assignment.

    Symbols read before being written get a pseudo-random initial value
    derived from ``(symbol, assignment)`` — identical across threads, so
    two threads loading the same global agree.  :meth:`step` commits an
    op's writes and epoch effects; :meth:`value_of` computes the value an
    op *would* produce in the current state without committing, which is
    how the rewriter value-checks a candidate replacement op in situ.
    """

    __slots__ = ("assignment", "env", "epoch")

    def __init__(self, assignment: int) -> None:
        self.assignment = assignment
        self.env: dict[str, int] = {}
        self.epoch = 0

    def read(self, symbol: str) -> int:
        value = self.env.get(symbol)
        if value is None:
            value = _h("input", symbol, self.assignment)
            self.env[symbol] = value
        return value

    def value_of(self, op: Operation) -> int:
        """The field value ``op`` produces in the current state."""
        opcode = op.opcode
        args = [self.read(symbol) for symbol in op.reads]
        if op.imm is not None:
            args.append(imm_value(op.imm))
        if opcode in LOAD_OPCODES:
            # lds with a bare immediate is a constant-pool lookup: its
            # value *is* the constant (what lets `sub x x` -> `lds #0`
            # fingerprint-match).  Loads with an address hash the address
            # value and the store epoch.
            if opcode == "lds" and not op.reads and op.imm is not None:
                return imm_value(op.imm)
            return _h("load", opcode, tuple(args), self.epoch)
        if opcode not in PURE_OPCODES:
            # Stores / control flow / unknown opcodes: an uninterpreted
            # effect, distinguished by everything observable about it.
            return _h("effect", opcode, tuple(args), self.epoch)
        if opcode == "mov" and len(args) == 1:
            return args[0]
        if opcode == "add":
            return sum(args) % PRIME
        if opcode == "mul":
            value = 1
            for arg in args:
                value = (value * arg) % PRIME
            return value
        if opcode == "sub" and len(args) == 2:
            return (args[0] - args[1]) % PRIME
        if opcode == "neg" and len(args) == 1:
            return (-args[0]) % PRIME
        if opcode == "shl" and len(args) == 2:
            return (args[0] * pow(2, args[1], PRIME)) % PRIME
        if opcode == "shr" and len(args) == 2 and args[1] == 0:
            return args[0]  # shift by zero is the identity; else opaque
        if opcode == "and":
            if 0 in args:
                return 0
            return _h("op", "and", tuple(sorted(args)))
        if opcode == "or":
            nonzero = sorted(arg for arg in args if arg != 0)
            if not nonzero:
                return 0
            if len(nonzero) == 1:
                return nonzero[0]
            return _h("op", "or", tuple(nonzero))
        if opcode in ("eq", "ne"):
            return _h("op", opcode, tuple(sorted(args)))
        # Pure but uninterpreted (div, mod, shr, comparisons, floats...):
        # a deterministic, order-sensitive function of the operand values.
        return _h("op", opcode, tuple(args))

    def is_stateful(self, op: Operation) -> bool:
        return op.opcode not in PURE_OPCODES and op.opcode not in LOAD_OPCODES

    def step(self, op: Operation) -> int:
        """Evaluate ``op``, commit its writes/effects, return its value."""
        value = self.value_of(op)
        if self.is_stateful(op):
            self.epoch += 1
        for symbol in op.writes:
            self.env[symbol] = value
        return value


def _assignment_indices(assignments: int | None = None,
                        seed: int | None = None) -> list[int]:
    count = NUM_ASSIGNMENTS if assignments is None else int(assignments)
    if count < 1:
        raise ValueError(f"need at least one assignment, got {count}")
    indices = list(range(count))
    if seed is not None:
        # Extra oracle-only assignments, disjoint from the fixed base set:
        # derived from the run seed so `REPRO_SEED` sharpens the check.
        indices.extend(_h("extra-assignment", int(seed), j) for j in range(2))
    return indices


def op_fingerprints(region: Region,
                    assignments: int | None = None) -> dict[tuple[int, int], int]:
    """Semantic fingerprint of every op, keyed by ``(thread, index)``.

    The fingerprint folds the op's value under each assignment plus its
    write arity, so ``a+b``/``b+a``/renamed temporaries collide and an op
    is never conflated with one writing a different number of results.
    """
    indices = _assignment_indices(assignments)
    values: dict[tuple[int, int], list[int]] = {
        op.key: [] for op in region.all_ops()}
    for index in indices:
        for tc in region.threads:
            ev = ThreadEvaluator(index)
            for op in tc.ops:
                values[op.key].append(ev.step(op))
    return {key: _h("fp", len(region[key[0]].ops[key[1]].writes), tuple(vs))
            for key, vs in values.items()}


def cross_thread_candidates(region: Region,
                            fingerprints: Mapping[tuple[int, int], int] | None = None,
                            ) -> int:
    """Ops whose semantic fingerprint collides with an op in another thread.

    This is the redundancy the vn pre-pass exists to surface: each counted
    op computes the same value as some op of a *different* thread, so a
    canonical-form rewrite can (potentially) make them share a slot.
    """
    if fingerprints is None:
        fingerprints = op_fingerprints(region)
    threads_by_fp: dict[int, set[int]] = {}
    for (thread, _index), fp in fingerprints.items():
        threads_by_fp.setdefault(fp, set()).add(thread)
    return sum(1 for (thread, _index), fp in fingerprints.items()
               if len(threads_by_fp[fp]) > 1)


def regions_mismatch(a: Region, b: Region, *,
                     assignments: int | None = None,
                     seed: int | None = None) -> str | None:
    """First observable difference between two regions, or None if none.

    The differential-oracle core: regions are compared thread-by-thread,
    op-by-op under every assignment — written values must agree, effect
    hashes of side-effecting/no-write ops must agree, and store epochs
    must stay in lockstep.  ``seed`` mixes extra assignments in on top of
    the fixed base set (see module docstring).
    """
    if a.num_threads != b.num_threads:
        return f"thread count {a.num_threads} != {b.num_threads}"
    for ta, tb in zip(a.threads, b.threads):
        if len(ta) != len(tb):
            return f"thread {ta.thread}: op count {len(ta)} != {len(tb)}"
        for opa, opb in zip(ta.ops, tb.ops):
            if opa.writes != opb.writes:
                return (f"thread {ta.thread} op {opa.index}: writes "
                        f"{opa.writes} != {opb.writes}")
    for index in _assignment_indices(assignments, seed=seed):
        for ta, tb in zip(a.threads, b.threads):
            ea, eb = ThreadEvaluator(index), ThreadEvaluator(index)
            for opa, opb in zip(ta.ops, tb.ops):
                va, vb = ea.step(opa), eb.step(opb)
                if va != vb:
                    what = "value" if opa.writes else "effect"
                    return (f"thread {ta.thread} op {opa.index} "
                            f"({opa.render()!r} vs {opb.render()!r}): "
                            f"{what} differs under assignment {index}")
                if ea.epoch != eb.epoch:
                    return (f"thread {ta.thread} op {opa.index}: store "
                            f"epoch diverged ({ea.epoch} != {eb.epoch})")
    return None
