"""Warn-once plumbing for the pre-``repro.api`` entry points.

The positional ``induce(region, model, ...)`` / ``windowed_induce(...)``
signatures predate the :mod:`repro.api` facade and stay as thin shims.
Each shim warns exactly once per process — property-based tests call the
old names thousands of times and a warning per call would drown real
output — keyed by shim name so distinct shims still each get their one
warning.
"""

from __future__ import annotations

import warnings

__all__ = ["reset_warned", "warn_once"]

_WARNED: set[str] = set()


def warn_once(key: str, message: str) -> None:
    """Emit ``DeprecationWarning`` the first time ``key`` is seen."""
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=3)


def reset_warned() -> None:
    """Forget which shims have warned (tests only)."""
    _WARNED.clear()
