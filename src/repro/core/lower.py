"""Lowering schedules to masked SIMD code.

A :class:`repro.core.schedule.Schedule` is abstract — it says which ops share
which slot.  Lowering turns it into a linear sequence of
:class:`MaskedInstruction`\\ s: one broadcast instruction per slot, an enable
mask naming the participating threads, and the per-thread operand bindings
the handler reads through indirect addressing.  This is the form the
MIMD-on-SIMD interpreter (and the tests) can actually execute.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.core.costmodel import CostModel
from repro.core.ops import Operation, Region
from repro.core.schedule import Schedule

__all__ = ["MaskedInstruction", "lower_schedule", "render_simd_code"]


@dataclass(frozen=True)
class MaskedInstruction:
    """One SIMD issue: ``opclass`` under ``mask`` with per-thread operands."""

    opclass: str
    mask: frozenset[int]
    bindings: Mapping[int, Operation]
    cost: float

    def __post_init__(self) -> None:
        if set(self.bindings) != set(self.mask):
            raise ValueError("mask and bindings disagree on participating threads")
        object.__setattr__(self, "bindings", MappingProxyType(dict(self.bindings)))

    @property
    def width(self) -> int:
        return len(self.mask)


def lower_schedule(schedule: Schedule, region: Region, model: CostModel) -> list[MaskedInstruction]:
    """Bind each slot's picks to concrete operations and attach slot costs."""
    code: list[MaskedInstruction] = []
    for slot in schedule:
        bindings = {t: region[t].ops[i] for t, i in slot.picks.items()}
        code.append(MaskedInstruction(
            opclass=slot.opclass,
            mask=frozenset(slot.picks),
            bindings=bindings,
            cost=model.slot_cost(slot.opclass),
        ))
    return code


def render_simd_code(code: list[MaskedInstruction], num_threads: int) -> str:
    """Listing with a visual PE-enable column per thread, e.g. ``X.X.``."""
    lines: list[str] = []
    total = 0.0
    for k, instr in enumerate(code):
        mask_str = "".join("X" if t in instr.mask else "." for t in range(num_threads))
        ops = "  ".join(
            f"T{t}<{instr.bindings[t].render()}>" for t in sorted(instr.mask)
        )
        total += instr.cost
        lines.append(f"{k:4d} |{mask_str}| {instr.opclass:<8s} cost={instr.cost:<6g} {ops}")
    lines.append(f"total cost = {total:g}")
    return "\n".join(lines)
