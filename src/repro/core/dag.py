"""Per-thread dependence DAGs.

CSI may reorder operations *within* a thread as long as dependences are
respected; dependences are the classical three derived from read/write sets
over straight-line code:

- flow (read-after-write),
- anti (write-after-read),
- output (write-after-write).

The DAG also precomputes, for a given cost model, each operation's *remaining
critical path* (longest cost-weighted path to any sink), which the
branch-and-bound search uses as an admissible lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.costmodel import CostModel
from repro.core.ops import Region, ThreadCode

__all__ = ["DependenceDAG", "build_dags"]


@dataclass(frozen=True)
class DependenceDAG:
    """Immutable dependence DAG of one thread's operation sequence.

    ``preds[i]``/``succs[i]`` are tuples of operation indices.  Transitive
    edges are not removed — correctness never depends on minimality, and
    keeping them makes construction obviously right.
    """

    thread: int
    preds: tuple[tuple[int, ...], ...]
    succs: tuple[tuple[int, ...], ...]

    def __len__(self) -> int:
        return len(self.preds)

    def ready(self, done: frozenset[int]) -> list[int]:
        """Indices whose predecessors are all in ``done`` and not done."""
        return [
            i for i in range(len(self.preds))
            if i not in done and all(p in done for p in self.preds[i])
        ]

    def is_valid_order(self, order: Iterable[int]) -> bool:
        """True iff ``order`` is a topological order of exactly all ops."""
        seen: set[int] = set()
        for i in order:
            if i in seen or not (0 <= i < len(self.preds)):
                return False
            if any(p not in seen for p in self.preds[i]):
                return False
            seen.add(i)
        return len(seen) == len(self.preds)

    def critical_path_costs(self, thread_code: ThreadCode, model: CostModel) -> tuple[float, ...]:
        """``cp[i]`` = cost of the longest path starting at op ``i``.

        Path cost counts slot costs (issue + mask overhead), i.e. the
        minimum schedule time the thread needs once it is about to run
        op ``i`` with nothing else done on its critical path.
        """
        n = len(self.preds)
        cp = [0.0] * n
        for i in reversed(range(n)):
            own = model.slot_cost(model.opcode_class(thread_code.ops[i].opcode))
            best_succ = max((cp[s] for s in self.succs[i]), default=0.0)
            cp[i] = own + best_succ
        return tuple(cp)


def _build_one(tc: ThreadCode, serialize: bool) -> DependenceDAG:
    n = len(tc.ops)
    preds: list[set[int]] = [set() for _ in range(n)]
    if serialize:
        for i in range(1, n):
            preds[i].add(i - 1)
    else:
        last_write: dict[str, int] = {}
        readers_since_write: dict[str, list[int]] = {}
        for i, op in enumerate(tc.ops):
            for sym in op.reads:
                if sym in last_write:          # flow dependence
                    preds[i].add(last_write[sym])
                readers_since_write.setdefault(sym, []).append(i)
            for sym in op.writes:
                if sym in last_write:          # output dependence
                    preds[i].add(last_write[sym])
                for r in readers_since_write.get(sym, ()):  # anti dependence
                    if r != i:
                        preds[i].add(r)
                last_write[sym] = i
                readers_since_write[sym] = []
            # An op both reading and writing sym: the read is of the old
            # value, handled above because reads were processed first.
    succs: list[list[int]] = [[] for _ in range(n)]
    for i, ps in enumerate(preds):
        for p in ps:
            succs[p].append(i)
    return DependenceDAG(
        thread=tc.thread,
        preds=tuple(tuple(sorted(ps)) for ps in preds),
        succs=tuple(tuple(sorted(ss)) for ss in succs),
    )


def build_dags(region: Region, respect_order: bool = False) -> tuple[DependenceDAG, ...]:
    """Build one dependence DAG per thread.

    With ``respect_order=True`` every op depends on its predecessor —
    i.e. program order is kept verbatim (a chain), which is both a useful
    baseline and a much cheaper search space.
    """
    return tuple(_build_one(tc, respect_order) for tc in region.threads)
