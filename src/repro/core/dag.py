"""Per-thread dependence DAGs.

CSI may reorder operations *within* a thread as long as dependences are
respected; dependences are the classical three derived from read/write sets
over straight-line code:

- flow (read-after-write),
- anti (write-after-read),
- output (write-after-write).

The DAG also precomputes, for a given cost model, each operation's *remaining
critical path* (longest cost-weighted path to any sink), which the
branch-and-bound search uses as an admissible lower bound.

Two structures here serve the bitmask search engine
(:mod:`repro.core.search`):

- :attr:`DependenceDAG.pred_masks` — each op's predecessor set packed into a
  plain ``int`` bitmask, so readiness is one ``&``/``==`` pair instead of a
  per-predecessor membership test;
- :class:`ReadyIndex` — a mutable ready-ops-by-merge-key index maintained
  *incrementally* as ops complete/uncomplete, shared by the greedy list
  scheduler and the branch-and-bound push/pop loop so neither ever rescans
  the whole DAG per step.

Construction applies *transitive reduction* by default: a direct edge
``p -> i`` is dropped when another predecessor ``q`` of ``i`` is reachable
from ``p`` (the path ``p -> .. -> q -> i`` already orders them).  For the
downward-closed done-sets every scheduler maintains (ops complete only when
all predecessors have), ready sets are identical with or without the
redundant edges, and since every op cost is positive the remaining critical
paths are identical too — the reduction only shrinks the masks the hot loop
touches.  ``transitive_reduction=False`` restores the verbatim edge set.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable

from repro.core.costmodel import CostModel, MergeKeyTable
from repro.core.ops import Region, ThreadCode

__all__ = ["DependenceDAG", "ReadyIndex", "build_dags"]


@dataclass(frozen=True)
class DependenceDAG:
    """Immutable dependence DAG of one thread's operation sequence.

    ``preds[i]``/``succs[i]`` are tuples of operation indices.  By default
    edges are transitively reduced (see the module docstring); correctness
    never depends on minimality, but the bitmask engine's bound and ready
    maintenance get cheaper with smaller masks.
    """

    thread: int
    preds: tuple[tuple[int, ...], ...]
    succs: tuple[tuple[int, ...], ...]

    def __len__(self) -> int:
        return len(self.preds)

    @cached_property
    def pred_masks(self) -> tuple[int, ...]:
        """``pred_masks[i]``: predecessor set of op ``i`` as an int bitmask.

        Readiness of ``i`` against a done-bitmask ``d`` is then
        ``pred_masks[i] & d == pred_masks[i]`` — pure int ops, no set
        objects, which is what the search hot path runs per push/pop.
        """
        masks = []
        for ps in self.preds:
            m = 0
            for p in ps:
                m |= 1 << p
            masks.append(m)
        return tuple(masks)

    def ready(self, done: frozenset[int]) -> list[int]:
        """Indices whose predecessors are all in ``done`` and not done."""
        return [
            i for i in range(len(self.preds))
            if i not in done and all(p in done for p in self.preds[i])
        ]

    def is_valid_order(self, order: Iterable[int]) -> bool:
        """True iff ``order`` is a topological order of exactly all ops."""
        seen: set[int] = set()
        for i in order:
            if i in seen or not (0 <= i < len(self.preds)):
                return False
            if any(p not in seen for p in self.preds[i]):
                return False
            seen.add(i)
        return len(seen) == len(self.preds)

    def critical_path_costs(self, thread_code: ThreadCode, model: CostModel) -> tuple[float, ...]:
        """``cp[i]`` = cost of the longest path starting at op ``i``.

        Path cost counts slot costs (issue + mask overhead), i.e. the
        minimum schedule time the thread needs once it is about to run
        op ``i`` with nothing else done on its critical path.
        """
        n = len(self.preds)
        cp = [0.0] * n
        for i in reversed(range(n)):
            own = model.slot_cost(model.opcode_class(thread_code.ops[i].opcode))
            best_succ = max((cp[s] for s in self.succs[i]), default=0.0)
            cp[i] = own + best_succ
        return tuple(cp)


def _transitive_reduce(preds: list[set[int]]) -> list[set[int]]:
    """Drop every edge implied by a longer path.

    Ops are in program order and every dependence points backward, so the
    index order is topological: one forward pass accumulating each op's
    full ancestor bitmask suffices.  Edge ``p -> i`` is redundant iff ``p``
    is an ancestor of some other predecessor of ``i``.
    """
    ancestors = [0] * len(preds)
    reduced: list[set[int]] = []
    for i, ps in enumerate(preds):
        above = 0
        full = 0
        for p in ps:
            above |= ancestors[p]
            full |= ancestors[p] | (1 << p)
        reduced.append({p for p in ps if not (above >> p) & 1})
        ancestors[i] = full
    return reduced


def _build_one(tc: ThreadCode, serialize: bool, reduce: bool = True) -> DependenceDAG:
    n = len(tc.ops)
    preds: list[set[int]] = [set() for _ in range(n)]
    if serialize:
        for i in range(1, n):
            preds[i].add(i - 1)
    else:
        last_write: dict[str, int] = {}
        readers_since_write: dict[str, list[int]] = {}
        for i, op in enumerate(tc.ops):
            for sym in op.reads:
                if sym in last_write:          # flow dependence
                    preds[i].add(last_write[sym])
                readers_since_write.setdefault(sym, []).append(i)
            for sym in op.writes:
                if sym in last_write:          # output dependence
                    preds[i].add(last_write[sym])
                for r in readers_since_write.get(sym, ()):  # anti dependence
                    if r != i:
                        preds[i].add(r)
                last_write[sym] = i
                readers_since_write[sym] = []
            # An op both reading and writing sym: the read is of the old
            # value, handled above because reads were processed first.
        if reduce:
            preds = _transitive_reduce(preds)
    succs: list[list[int]] = [[] for _ in range(n)]
    for i, ps in enumerate(preds):
        for p in ps:
            succs[p].append(i)
    return DependenceDAG(
        thread=tc.thread,
        preds=tuple(tuple(sorted(ps)) for ps in preds),
        succs=tuple(tuple(sorted(ss)) for ss in succs),
    )


def build_dags(
    region: Region,
    respect_order: bool = False,
    transitive_reduction: bool = True,
) -> tuple[DependenceDAG, ...]:
    """Build one dependence DAG per thread.

    With ``respect_order=True`` every op depends on its predecessor —
    i.e. program order is kept verbatim (a chain), which is both a useful
    baseline and a much cheaper search space.  ``transitive_reduction``
    (default on) drops redundant edges; see the module docstring for why
    this is behaviour-preserving for every scheduler in this package.
    """
    return tuple(
        _build_one(tc, respect_order, reduce=transitive_reduction)
        for tc in region.threads
    )


class ReadyIndex:
    """Incremental ready-ops-by-merge-key index over bitmask thread state.

    The index the bitmask engine and the greedy list scheduler share.  For
    every (merge-key id, thread) pair it keeps a bitmask of that thread's
    *ready* ops of that key, plus a per-key total so empty keys are skipped
    in O(1).  :meth:`complete`/:meth:`uncomplete` maintain the structure as
    ops finish and un-finish (branch-and-bound backtracking), touching only
    the finished op's successors — there is no per-step ``ready()`` rescan
    and no per-step dict building anywhere.

    Layout: ``ready[kid * num_threads + t]`` is the bitmask for merge key
    ``kid`` in thread ``t``; key ids come from a :class:`MergeKeyTable`
    whose id order equals the canonical merge-key order, so iterating ids
    ascending reproduces the schedulers' canonical key exploration order.
    """

    __slots__ = ("num_threads", "table", "key_of", "pred_masks", "succs",
                 "done", "ready", "ready_count")

    def __init__(self, region: Region, dags: tuple[DependenceDAG, ...],
                 table: MergeKeyTable) -> None:
        num_threads = region.num_threads
        self.num_threads = num_threads
        self.table = table
        self.key_of = table.ids_by_thread
        self.pred_masks = tuple(dag.pred_masks for dag in dags)
        self.succs = tuple(dag.succs for dag in dags)
        self.done = [0] * num_threads
        self.ready = [0] * (len(table) * num_threads)
        self.ready_count = [0] * len(table)
        for t in range(num_threads):
            key_of = self.key_of[t]
            for i, mask in enumerate(self.pred_masks[t]):
                if mask == 0:
                    self.ready[key_of[i] * num_threads + t] |= 1 << i
                    self.ready_count[key_of[i]] += 1

    def complete(self, t: int, i: int) -> list[int]:
        """Mark op ``i`` of thread ``t`` done; returns the ops that became
        ready (the exact undo token :meth:`uncomplete` needs)."""
        num_threads = self.num_threads
        key_of = self.key_of[t]
        bit = 1 << i
        self.done[t] |= bit
        done_t = self.done[t]
        self.ready[key_of[i] * num_threads + t] &= ~bit
        self.ready_count[key_of[i]] -= 1
        newly: list[int] = []
        pred_masks = self.pred_masks[t]
        for s in self.succs[t][i]:
            mask = pred_masks[s]
            if mask & done_t == mask:
                self.ready[key_of[s] * num_threads + t] |= 1 << s
                self.ready_count[key_of[s]] += 1
                newly.append(s)
        return newly

    def uncomplete(self, t: int, i: int, newly: list[int]) -> None:
        """Exact inverse of :meth:`complete` (backtracking)."""
        num_threads = self.num_threads
        key_of = self.key_of[t]
        for s in newly:
            self.ready[key_of[s] * num_threads + t] &= ~(1 << s)
            self.ready_count[key_of[s]] -= 1
        self.done[t] &= ~(1 << i)
        self.ready[key_of[i] * num_threads + t] |= 1 << i
        self.ready_count[key_of[i]] += 1

    def pick_orders(self, crit: tuple[tuple[float, ...], ...],
                    prefer_low_index: bool = False) -> list[tuple[int, ...]]:
        """Per (key, thread) op-candidate order for ready-pick selection.

        Ordered by remaining critical path descending; ties break toward
        the higher op index (the search's ``max(idxs, key=(crit, i))``)
        unless ``prefer_low_index`` (the greedy's first-max policy).  The
        first candidate whose ready bit is set is the pick — almost always
        the first probe, so selection is O(1) without any per-step sort.
        """
        num_threads = self.num_threads
        orders: list[tuple[int, ...]] = [()] * (len(self.table) * num_threads)
        for t in range(num_threads):
            crit_t = crit[t]
            buckets: dict[int, list[int]] = {}
            for i, kid in enumerate(self.key_of[t]):
                buckets.setdefault(kid, []).append(i)
            for kid, idxs in buckets.items():
                if prefer_low_index:
                    idxs.sort(key=lambda i: (-crit_t[i], i))
                else:
                    idxs.sort(key=lambda i: (-crit_t[i], -i))
                orders[kid * num_threads + t] = tuple(idxs)
        return orders
