"""Content-addressed schedule cache for the induction service.

Repeated regions are the common case for interpreter workloads — the same
handler set is induced every time a program is loaded, and windowed traces
of SPMD code contain many identical windows.  Re-running the exponential
branch-and-bound for each of them is pure waste: a schedule is a pure
function of (region ops, cost-model parameters, search configuration), so
the triple is hashed into a stable *fingerprint* and finished schedules are
memoized under it.

Two tiers:

- an in-memory LRU (:class:`collections.OrderedDict`) bounded by
  ``capacity`` entries, always on;
- an optional on-disk JSON tier (``cache_dir``) that persists schedules
  across processes and runs — entries are one pretty-printed JSON file per
  fingerprint, written atomically (temp file + ``os.replace``) so parallel
  writers can never leave a torn file.

Hits return a *copy* of the stored stats so callers can't mutate cache
state; schedules are immutable and shared.  A hit deliberately skips
re-verification — trusting the cache is exactly the O(lookup) fast path —
while corrupt or unreadable disk entries degrade to a miss, never an error.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from time import perf_counter

from repro.core.costmodel import CostModel
from repro.core.ops import Region
from repro.core.schedule import Schedule, Slot
from repro.core.search import SearchConfig, SearchStats
from repro.obs import Counters
from repro.obs.metrics import get_registry

__all__ = [
    "ScheduleCache",
    "region_fingerprint",
    "schedule_from_payload",
    "schedule_to_payload",
]

#: Bump when the fingerprint payload layout changes, so stale disk tiers
#: from older code can never alias new entries.
_FINGERPRINT_VERSION = 1


def _canon_imm(imm: int | float | None) -> list | None:
    """JSON-stable immediate encoding: ints and floats must not collide."""
    if imm is None:
        return None
    if isinstance(imm, float):
        return ["f", repr(imm)]
    return ["i", int(imm)]


def region_fingerprint(
    region: Region,
    model: CostModel,
    config: SearchConfig | None = None,
    method: str = "search",
) -> str:
    """SHA-256 hex fingerprint of everything the schedule depends on.

    Two calls agree iff they would produce the same schedule: same per-thread
    opcode/operand/immediate sequences, same cost-model parameters, same
    search configuration, same induction method.  Thread ids and op indices
    are positional, so re-parsed or re-generated copies of a region
    fingerprint identically.
    """
    config = config or SearchConfig()
    payload = {
        "v": _FINGERPRINT_VERSION,
        "method": method,
        "region": [
            [[op.opcode, list(op.reads), list(op.writes), _canon_imm(op.imm)]
             for op in tc.ops]
            for tc in region.threads
        ],
        "model": {
            "class_of": sorted(model.class_of.items()),
            "class_cost": sorted(
                (cls, repr(float(cost))) for cls, cost in model.class_cost.items()
            ),
            "mask_overhead": repr(float(model.mask_overhead)),
            "default_cost": repr(float(model.default_cost)),
            "require_equal_imm": model.require_equal_imm,
        },
        "config": dataclasses.asdict(config),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def schedule_to_payload(schedule: Schedule) -> list:
    """JSON-able form of a schedule (inverse of :func:`schedule_from_payload`)."""
    return [
        [slot.opclass, sorted([int(t), int(i)] for t, i in slot.picks.items())]
        for slot in schedule
    ]


def schedule_from_payload(payload: list) -> Schedule:
    """Rebuild a :class:`Schedule` from :func:`schedule_to_payload` output."""
    return Schedule(tuple(
        Slot(opclass, {int(t): int(i) for t, i in picks})
        for opclass, picks in payload
    ))


@dataclass(frozen=True)
class _Entry:
    schedule: Schedule
    stats: SearchStats | None


class ScheduleCache:
    """Two-tier (memory LRU + optional disk) schedule cache.

    Counter names: ``hits``, ``memory_hits``, ``disk_hits``, ``misses``,
    ``stores``, ``evictions``, ``disk_errors``.

    Thread-safe: the induction server's connection handlers and batcher
    share one cache, so the memory tier is guarded by an :class:`RLock`
    (the disk tier was already safe — atomic replace on write, torn reads
    degrade to a miss).
    """

    def __init__(self, capacity: int = 1024,
                 cache_dir: str | os.PathLike | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._memory: OrderedDict[str, _Entry] = OrderedDict()
        self._lock = threading.RLock()
        self.counters = Counters()

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    @property
    def hit_rate(self) -> float:
        looked_up = self.counters["hits"] + self.counters["misses"]
        return self.counters["hits"] / looked_up if looked_up else 0.0

    def get(self, fingerprint: str) -> tuple[Schedule, SearchStats | None] | None:
        """Schedule + stats stored under ``fingerprint``, or None on miss."""
        start = perf_counter()
        with self._lock:
            entry = self._memory.get(fingerprint)
            if entry is not None:
                self._memory.move_to_end(fingerprint)
                self.counters.bump("hits")
                self.counters.bump("memory_hits")
                get_registry().observe("cache_hit_seconds",
                                       perf_counter() - start)
                return entry.schedule, self._copy_stats(entry.stats)
        entry = self._disk_get(fingerprint)
        if entry is not None:
            with self._lock:
                self._remember(fingerprint, entry)
            self.counters.bump("hits")
            self.counters.bump("disk_hits")
            get_registry().observe("cache_hit_seconds", perf_counter() - start)
            return entry.schedule, self._copy_stats(entry.stats)
        self.counters.bump("misses")
        get_registry().observe("cache_miss_seconds", perf_counter() - start)
        return None

    def put(self, fingerprint: str, schedule: Schedule,
            stats: SearchStats | None = None) -> None:
        """Store a finished schedule in both tiers."""
        entry = _Entry(schedule, self._copy_stats(stats))
        with self._lock:
            self._remember(fingerprint, entry)
        self.counters.bump("stores")
        if self.cache_dir is not None:
            self._disk_put(fingerprint, entry)

    # -- memory tier ------------------------------------------------------

    def _remember(self, fingerprint: str, entry: _Entry) -> None:
        # Caller holds the lock.
        self._memory[fingerprint] = entry
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.counters.bump("evictions")

    @staticmethod
    def _copy_stats(stats: SearchStats | None) -> SearchStats | None:
        return dataclasses.replace(stats) if stats is not None else None

    # -- disk tier --------------------------------------------------------

    def _disk_path(self, fingerprint: str) -> Path:
        return self.cache_dir / f"{fingerprint}.json"

    def _disk_get(self, fingerprint: str) -> _Entry | None:
        if self.cache_dir is None:
            return None
        path = self._disk_path(fingerprint)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            schedule = schedule_from_payload(data["schedule"])
            raw_stats = data.get("stats")
            stats = SearchStats(**raw_stats) if raw_stats is not None else None
            return _Entry(schedule, stats)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Torn, corrupt or incompatible entry: a miss, never an error.
            self.counters.bump("disk_errors")
            return None

    def _disk_put(self, fingerprint: str, entry: _Entry) -> None:
        data = {
            "fingerprint": fingerprint,
            "schedule": schedule_to_payload(entry.schedule),
            "stats": dataclasses.asdict(entry.stats) if entry.stats else None,
        }
        try:
            fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(data, fh, indent=1)
            os.replace(tmp, self._disk_path(fingerprint))
        except OSError:
            self.counters.bump("disk_errors")
