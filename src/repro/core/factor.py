"""Hand-factoring baseline: merge common prefixes and suffixes only.

Before CSI existed, common SIMD subsequences were factored out of MIMD
interpreters *by hand* (supplied text §3.1.3.2: "this recognition of common
SIMD code sequences can be done by hand for very simple MIMD instruction
sets").  The natural hand factoring merges the operations every thread
starts with (shared prologue — e.g. instruction fetch) and ends with
(shared epilogue — e.g. program-counter increment) and serializes whatever
differs in the middle.

This is the intermediate point between :func:`repro.core.serial.serial_schedule`
and full CSI: it finds alignments only at the region's edges, in program
order, never by reordering.
"""

from __future__ import annotations

from repro.core.costmodel import CostModel
from repro.core.ops import Region
from repro.core.schedule import Schedule, Slot

__all__ = ["factor_schedule"]


def _common_prefix_len(region: Region, model: CostModel, limit: int) -> int:
    k = 0
    while k < limit:
        keys = {model.merge_key(tc.ops[k]) for tc in region.threads}
        if len(keys) != 1:
            break
        k += 1
    return k


def _common_suffix_len(region: Region, model: CostModel, limit: int) -> int:
    k = 0
    while k < limit:
        keys = {model.merge_key(tc.ops[len(tc) - 1 - k]) for tc in region.threads}
        if len(keys) != 1:
            break
        k += 1
    return k


def factor_schedule(region: Region, model: CostModel) -> Schedule:
    """Merge the maximal common prefix and suffix; serialize the middles.

    Operations stay in program order, so the result is valid for any
    dependence structure (program order is always a topological order).
    """
    if region.num_threads == 0:
        return Schedule(())
    min_len = min(len(tc) for tc in region.threads)
    pre = _common_prefix_len(region, model, min_len)
    suf = _common_suffix_len(region, model, min_len - pre)

    slots: list[Slot] = []
    for k in range(pre):
        op0 = region[0].ops[k]
        slots.append(Slot(
            model.opcode_class(op0.opcode),
            {tc.thread: k for tc in region.threads},
        ))
    for tc in region.threads:
        for k in range(pre, len(tc) - suf):
            op = tc.ops[k]
            slots.append(Slot(model.opcode_class(op.opcode), {tc.thread: k}))
    for k in range(suf, 0, -1):
        op0 = region[0].ops[len(region[0]) - k]
        slots.append(Slot(
            model.opcode_class(op0.opcode),
            {tc.thread: len(tc) - k for tc in region.threads},
        ))
    return Schedule(tuple(slots))
