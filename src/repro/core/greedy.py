"""Greedy list-scheduling heuristic for CSI.

Polynomial-time induction used (a) as a baseline against the exact search
and (b) as the incumbent that seeds branch-and-bound so it behaves as an
anytime algorithm.

At every step the scheduler looks at the *ready* operations of all threads
(dependence predecessors done), buckets them by merge key, and issues the
bucket with the greatest immediate payoff:

    payoff(bucket) = (width - 1) * slot_cost      # time saved vs serial
    tie-break 1:   max remaining critical path of the bucket's ops
    tie-break 2:   wider bucket first, then stable key order

When a thread has several ready ops with the same merge key, the one with
the longest remaining critical path is induced (free the critical chain
first).
"""

from __future__ import annotations

from repro.core.costmodel import CostModel, merge_key_sort_key
from repro.core.dag import DependenceDAG, build_dags
from repro.core.ops import Region
from repro.core.schedule import Schedule, Slot

__all__ = ["greedy_schedule"]


def greedy_schedule(
    region: Region,
    model: CostModel,
    dags: tuple[DependenceDAG, ...] | None = None,
    respect_order: bool = False,
) -> Schedule:
    """Build a valid schedule greedily (see module docstring for the policy)."""
    if dags is None:
        dags = build_dags(region, respect_order=respect_order)
    crit = tuple(
        dag.critical_path_costs(region[t], model) for t, dag in enumerate(dags)
    )
    done: list[set[int]] = [set() for _ in region.threads]
    remaining = region.num_ops
    slots: list[Slot] = []

    while remaining:
        buckets: dict[tuple, dict[int, int]] = {}
        for t, dag in enumerate(dags):
            ready = dag.ready(frozenset(done[t]))
            best_per_key: dict[tuple, int] = {}
            for i in ready:
                key = model.merge_key(region[t].ops[i])
                prev = best_per_key.get(key)
                if prev is None or crit[t][i] > crit[t][prev]:
                    best_per_key[key] = i
            for key, i in best_per_key.items():
                buckets.setdefault(key, {})[t] = i
        if not buckets:
            raise RuntimeError("no ready operations but work remains (cyclic DAG?)")

        def score(item: tuple[tuple, dict[int, int]]) -> tuple:
            key, picks = item
            any_t = next(iter(picks))
            opclass = model.opcode_class(region[any_t].ops[picks[any_t]].opcode)
            saved = (len(picks) - 1) * model.slot_cost(opclass)
            longest = max(crit[t][i] for t, i in picks.items())
            return (saved, longest, len(picks), merge_key_sort_key(key))

        key, picks = max(buckets.items(), key=score)
        any_t = next(iter(picks))
        opclass = model.opcode_class(region[any_t].ops[picks[any_t]].opcode)
        slots.append(Slot(opclass, picks))
        for t, i in picks.items():
            done[t].add(i)
        remaining -= len(picks)

    return Schedule(tuple(slots))
