"""Greedy list-scheduling heuristic for CSI.

Polynomial-time induction used (a) as a baseline against the exact search
and (b) as the incumbent that seeds branch-and-bound so it behaves as an
anytime algorithm.

At every step the scheduler looks at the *ready* operations of all threads
(dependence predecessors done), buckets them by merge key, and issues the
bucket with the greatest immediate payoff:

    payoff(bucket) = (width - 1) * slot_cost      # time saved vs serial
    tie-break 1:   max remaining critical path of the bucket's ops
    tie-break 2:   wider bucket first, then stable key order

When a thread has several ready ops with the same merge key, the one with
the longest remaining critical path is induced (free the critical chain
first; earliest op on critical-path ties).

The implementation runs on the same incremental machinery as the
branch-and-bound hot path — :class:`repro.core.dag.ReadyIndex` over int
bitmasks with merge keys interned by :class:`~repro.core.costmodel.MergeKeyTable`
— so there is no per-step ``ready()`` rescan or bucket-dict rebuild here
either, and the two schedulers cannot drift in how they enumerate ready
work.
"""

from __future__ import annotations

from repro.core.costmodel import CostModel, MergeKeyTable
from repro.core.dag import DependenceDAG, ReadyIndex, build_dags
from repro.core.ops import Region
from repro.core.schedule import Schedule, Slot

__all__ = ["greedy_schedule"]


def greedy_schedule(
    region: Region,
    model: CostModel,
    dags: tuple[DependenceDAG, ...] | None = None,
    respect_order: bool = False,
) -> Schedule:
    """Build a valid schedule greedily (see module docstring for the policy)."""
    if dags is None:
        dags = build_dags(region, respect_order=respect_order)
    crit = tuple(
        dag.critical_path_costs(region[t], model) for t, dag in enumerate(dags)
    )
    table = MergeKeyTable(model, region)
    index = ReadyIndex(region, dags, table)
    orders = index.pick_orders(crit, prefer_low_index=True)
    num_threads = region.num_threads
    num_keys = len(table)
    ready = index.ready
    ready_count = index.ready_count
    slot_costs = table.slot_costs
    opclasses = table.opclasses

    remaining = region.num_ops
    slots: list[Slot] = []
    while remaining:
        best_score: tuple[float, float, int] | None = None
        best_kid = -1
        best_picks: list[tuple[int, int]] | None = None
        for kid in range(num_keys):
            if not ready_count[kid]:
                continue
            base = kid * num_threads
            picks: list[tuple[int, int]] = []
            longest = 0.0
            for t in range(num_threads):
                bits = ready[base + t]
                if not bits:
                    continue
                for i in orders[base + t]:
                    if (bits >> i) & 1:
                        break
                picks.append((t, i))
                c = crit[t][i]
                if c > longest:
                    longest = c
            width = len(picks)
            score = ((width - 1) * slot_costs[kid], longest, width)
            # >= while scanning kids ascending == max() with the canonical
            # merge-key order as the final tie-break (kid order is canonical).
            if best_score is None or score >= best_score:
                best_score = score
                best_kid = kid
                best_picks = picks
        if best_picks is None:
            raise RuntimeError("no ready operations but work remains (cyclic DAG?)")
        slots.append(Slot(opclasses[best_kid], dict(best_picks)))
        for t, i in best_picks:
            index.complete(t, i)
        remaining -= len(best_picks)

    return Schedule(tuple(slots))
