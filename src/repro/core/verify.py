"""Independent schedule verification.

The scheduler implementations are search code with pruning heuristics — the
kind of code where a subtle bug silently produces an *invalid but cheap*
schedule that looks like a great result.  This module is the defense: a
from-first-principles checker used by the tests, the property-based suite
and (optionally) the induction pipeline itself.

A schedule is valid for (region, model) iff:

1. every operation of the region appears in exactly one slot;
2. each slot holds at most one operation per thread, all mergeable with each
   other under the model (same merge key);
3. the slot's declared opcode class matches its operations' class;
4. for each thread, the order in which its operations appear respects the
   thread's dependence DAG.
"""

from __future__ import annotations

from repro.core.costmodel import CostModel
from repro.core.dag import DependenceDAG, build_dags
from repro.core.ops import Region
from repro.core.schedule import Schedule

__all__ = ["ScheduleError", "verify_schedule"]


class ScheduleError(AssertionError):
    """Raised when a schedule fails verification."""


def verify_schedule(
    schedule: Schedule,
    region: Region,
    model: CostModel,
    dags: tuple[DependenceDAG, ...] | None = None,
    respect_order: bool = False,
) -> None:
    """Raise :class:`ScheduleError` unless ``schedule`` is valid.

    ``dags`` may be supplied to avoid recomputation; otherwise they are
    rebuilt with ``respect_order``.
    """
    if dags is None:
        dags = build_dags(region, respect_order=respect_order)

    seen: set[tuple[int, int]] = set()
    per_thread_order: dict[int, list[int]] = {t: [] for t in range(region.num_threads)}

    for k, slot in enumerate(schedule.slots):
        keys = set()
        for t, i in slot.picks.items():
            if not (0 <= t < region.num_threads):
                raise ScheduleError(f"slot {k}: unknown thread {t}")
            if not (0 <= i < len(region[t])):
                raise ScheduleError(f"slot {k}: thread {t} has no op {i}")
            op = region[t].ops[i]
            if op.key in seen:
                raise ScheduleError(f"slot {k}: op {op.key} scheduled twice")
            seen.add(op.key)
            if model.opcode_class(op.opcode) != slot.opclass:
                raise ScheduleError(
                    f"slot {k}: op {op.key} has class "
                    f"{model.opcode_class(op.opcode)!r}, slot says {slot.opclass!r}")
            keys.add(model.merge_key(op))
            per_thread_order[t].append(i)
        if len(keys) != 1:
            raise ScheduleError(f"slot {k}: non-mergeable operations {sorted(keys)}")

    total = region.num_ops
    if len(seen) != total:
        missing = {op.key for op in region.all_ops()} - seen
        raise ScheduleError(f"schedule covers {len(seen)}/{total} ops; missing {sorted(missing)}")

    for t, order in per_thread_order.items():
        if not dags[t].is_valid_order(order):
            raise ScheduleError(f"thread {t}: order {order} violates dependences")
