"""The unified induction-result protocol.

Induction produces results through three doors — one-shot
:class:`repro.core.pipeline.InductionResult`, windowed
:class:`repro.core.window.WindowedResult`, and replies from the induction
service (:class:`ServiceResult`) — and before this module each had its own
shape, so every consumer (CLI, benchmarks, the service wire format)
special-cased them.  :class:`ResultBase` gives all three one surface:

- ``method``, ``schedule``, ``cost``, ``serial_cost``, ``lockstep_cost``;
- ``speedup_vs_serial`` / ``speedup_vs_lockstep`` (paper-style ratios);
- ``search_stats`` — always a tuple, empty for baselines, one entry per
  window for windowed runs;
- ``cache_hit`` — True when the *whole* result came from the cache;
- ``optimal`` — every search involved completed within budget and the
  result was not degraded;
- ``degraded`` — the service (or a local deadline) fell back to the
  greedy/incumbent schedule instead of finishing the search;
- ``wall_s`` and ``as_dict()`` — one JSON-able serialization for traces,
  the service protocol and table printers.

:func:`result_to_payload` / :func:`result_from_payload` round-trip any
result through JSON; the reconstructed side is a :class:`ServiceResult`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.cache import schedule_from_payload, schedule_to_payload
from repro.core.schedule import Schedule
from repro.core.search import SearchStats

__all__ = [
    "ResultBase",
    "ServiceResult",
    "result_from_payload",
    "result_to_payload",
    "speedup",
]


def speedup(baseline: float, cost: float) -> float:
    """``baseline / cost`` with the empty-region case pinned to 1.0.

    An empty schedule measured against an empty baseline is a no-op versus
    a no-op — neither faster nor slower — so 0.0/0.0 reports 1.0 rather
    than falling into the infinite-speedup branch.
    """
    if cost:
        return baseline / cost
    return 1.0 if not baseline else float("inf")


class ResultBase:
    """Mixin implementing the unified result protocol.

    Subclasses provide ``method``, ``schedule``, ``cost``, ``serial_cost``,
    ``lockstep_cost``, ``stats``, ``cache_hit``, ``wall_s`` and
    ``degraded`` (as fields, properties or class attributes); the mixin
    derives the rest.
    """

    #: Discriminator used by :func:`result_to_payload` (overridden per class).
    kind = "result"

    @property
    def speedup_vs_serial(self) -> float:
        """Paper-style speedup: serialized-MIMD time / induced time."""
        return speedup(self.serial_cost, self.cost)

    @property
    def speedup_vs_lockstep(self) -> float:
        """Speedup over the naive lockstep interpreter schedule."""
        return speedup(self.lockstep_cost, self.cost)

    @property
    def search_stats(self) -> tuple[SearchStats, ...]:
        """Per-search statistics as a tuple, however many searches ran."""
        stats = getattr(self, "stats", None)
        if stats is None:
            return ()
        if isinstance(stats, SearchStats):
            return (stats,)
        return tuple(stats)

    @property
    def total_nodes(self) -> int:
        return sum(s.nodes_expanded for s in self.search_stats)

    @property
    def optimal(self) -> bool:
        """Every search completed within budget and nothing was degraded.

        Baseline methods (no search ran) count as optimal for *their*
        method — the schedule is exactly what the method produces.
        """
        if self.degraded:
            return False
        stats = self.search_stats
        return all(s.optimal for s in stats) if stats else True

    def as_dict(self, include_schedule: bool = False) -> dict[str, Any]:
        """Uniform JSON-able summary shared by CLI, benchmarks and service."""
        out: dict[str, Any] = {
            "kind": self.kind,
            "method": self.method,
            "cost": self.cost,
            "serial_cost": self.serial_cost,
            "lockstep_cost": self.lockstep_cost,
            "speedup_vs_serial": self.speedup_vs_serial,
            "speedup_vs_lockstep": self.speedup_vs_lockstep,
            "slots": len(self.schedule),
            "nodes": self.total_nodes,
            "cache_hit": bool(self.cache_hit),
            "optimal": self.optimal,
            "degraded": bool(self.degraded),
            "wall_s": self.wall_s,
        }
        if include_schedule:
            out["schedule"] = schedule_to_payload(self.schedule)
        return out


@dataclass(frozen=True)
class ServiceResult(ResultBase):
    """A result reconstructed from the wire (or synthesized by the server).

    ``extras`` carries server-side context that has no local analogue:
    batch size, dedup disposition, retry count, queue wait.
    """

    method: str
    schedule: Schedule
    cost: float
    serial_cost: float
    lockstep_cost: float
    stats: tuple[SearchStats, ...] = ()
    cache_hit: bool = False
    wall_s: float = 0.0
    degraded: bool = False
    extras: Mapping[str, Any] = field(default_factory=dict)

    kind = "service"


def result_to_payload(result: ResultBase) -> dict[str, Any]:
    """Full wire form of any result implementing the protocol."""
    payload = result.as_dict(include_schedule=True)
    payload["stats"] = [dataclasses.asdict(s) for s in result.search_stats]
    return payload


def result_from_payload(payload: Mapping[str, Any]) -> ServiceResult:
    """Rebuild a :class:`ServiceResult` from :func:`result_to_payload` output.

    Unknown keys are preserved in ``extras`` so protocol additions degrade
    gracefully for older clients.
    """
    known = {
        "kind", "method", "cost", "serial_cost", "lockstep_cost",
        "speedup_vs_serial", "speedup_vs_lockstep", "slots", "nodes",
        "cache_hit", "optimal", "degraded", "wall_s", "schedule", "stats",
    }
    return ServiceResult(
        method=payload["method"],
        schedule=schedule_from_payload(payload["schedule"]),
        cost=float(payload["cost"]),
        serial_cost=float(payload["serial_cost"]),
        lockstep_cost=float(payload["lockstep_cost"]),
        stats=tuple(SearchStats(**s) for s in payload.get("stats", ())),
        cache_hit=bool(payload.get("cache_hit", False)),
        wall_s=float(payload.get("wall_s", 0.0)),
        degraded=bool(payload.get("degraded", False)),
        extras={k: v for k, v in payload.items() if k not in known},
    )
