"""Common Subexpression Induction (CSI) — the paper's core contribution.

CSI takes the per-thread instruction sequences of a MIMD code region and
produces a single SIMD schedule in which one instruction slot may be shared
("induced") by every thread that needs an instruction of that class at that
point, minimizing total masked-SIMD execution time.

Public entry points:

- :func:`repro.core.pipeline.induce` — run CSI (or a baseline) on a region.
- :class:`repro.core.ops.Region` / :class:`repro.core.ops.Operation` — IR.
- :class:`repro.core.costmodel.CostModel` — SIMD timing/mergeability model.
- :class:`repro.core.schedule.Schedule` — the result, verifiable with
  :func:`repro.core.verify.verify_schedule`.
- :class:`repro.core.cache.ScheduleCache` — content-addressed memoization
  of finished schedules (in-memory LRU + optional on-disk tier).
- :func:`repro.core.window.windowed_induce` — windowed induction with
  optional process-pool fan-out, caching and tracing.
"""

from repro.core.anneal import AnnealStats, anneal_schedule
from repro.core.cache import (
    ScheduleCache,
    region_fingerprint,
    schedule_from_payload,
    schedule_to_payload,
)
from repro.core.costmodel import CostModel, maspar_cost_model, uniform_cost_model
from repro.core.dag import DependenceDAG, build_dags
from repro.core.factor import factor_schedule
from repro.core.greedy import greedy_schedule
from repro.core.lower import MaskedInstruction, lower_schedule, render_simd_code
from repro.core.ops import Operation, Region, ThreadCode, parse_region
from repro.core.pipeline import InductionResult, induce
from repro.core.portfolio import (
    PORTFOLIO_STRATEGIES,
    PortfolioResult,
    StrategyOutcome,
    run_portfolio,
)
from repro.core.result import (
    ResultBase,
    ServiceResult,
    result_from_payload,
    result_to_payload,
)
from repro.core.schedule import Schedule, Slot
from repro.core.search import SearchStats, branch_and_bound
from repro.core.serial import lockstep_schedule, serial_schedule
from repro.core.verify import ScheduleError, verify_schedule
from repro.core.window import WindowedResult, windowed_induce

__all__ = [
    "AnnealStats",
    "CostModel",
    "DependenceDAG",
    "InductionResult",
    "MaskedInstruction",
    "Operation",
    "PORTFOLIO_STRATEGIES",
    "PortfolioResult",
    "Region",
    "Schedule",
    "ScheduleCache",
    "ScheduleError",
    "SearchStats",
    "Slot",
    "StrategyOutcome",
    "ThreadCode",
    "anneal_schedule",
    "branch_and_bound",
    "build_dags",
    "factor_schedule",
    "greedy_schedule",
    "induce",
    "lockstep_schedule",
    "lower_schedule",
    "maspar_cost_model",
    "parse_region",
    "region_fingerprint",
    "render_simd_code",
    "result_from_payload",
    "result_to_payload",
    "run_portfolio",
    "ResultBase",
    "ServiceResult",
    "schedule_from_payload",
    "schedule_to_payload",
    "serial_schedule",
    "uniform_cost_model",
    "verify_schedule",
    "windowed_induce",
    "WindowedResult",
]
