"""Branch-and-bound engine implementations.

Three engines implement the *identical* search — same schedules, same
costs, same :class:`~repro.core.search.SearchStats` counters, bit for bit
(``tests/core/test_engine_equivalence.py`` enforces this across the
pruning-knob matrix, and the fuzz harness re-checks it on random regions):

- ``legacy`` — the original frozenset/dict recursion, kept as the
  reference oracle (:mod:`repro.core.engines.legacy`);
- ``bitmask`` — incremental int-bitmask state over an explicit stack, the
  default hot path (:mod:`repro.core.engines.bitmask`);
- ``array`` — batched generation-time bounds, a state-keyed generation
  cache and lazy state materialisation, the fastest engine
  (:mod:`repro.core.engines.arrayengine`; vectorises with numpy when
  available, bit-identical without it).

:mod:`repro.core.search` re-exports this registry; ``SearchConfig.engine``
selects an implementation by name.
"""

from repro.core.engines.arrayengine import array_search
from repro.core.engines.bitmask import bitmask_search
from repro.core.engines.legacy import legacy_search

__all__ = ["ENGINES", "ENGINE_IMPLS",
           "array_search", "bitmask_search", "legacy_search"]

#: Known search engine implementations (identical results, different speed).
ENGINES = ("bitmask", "legacy", "array")

ENGINE_IMPLS = {
    "bitmask": bitmask_search,
    "legacy": legacy_search,
    "array": array_search,
}
