"""Legacy engine — the reference oracle.

This is the original frozenset/dict implementation, preserved verbatim.
It defines the search semantics every other engine must reproduce exactly
(schedules, costs and all pruning counters); the equivalence property
tests diff the engines against each other, so changes here must be
mirrored in :mod:`repro.core.engines.bitmask` and
:mod:`repro.core.engines.arrayengine` and vice versa.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core.costmodel import CostModel, merge_key_sort_key
from repro.core.dag import DependenceDAG
from repro.core.ops import Region
from repro.core.schedule import Slot

if TYPE_CHECKING:  # pragma: no cover - type-only; avoids an import cycle
    from repro.core.search import SearchConfig, SearchStats

__all__ = ["legacy_search"]


@dataclass
class _SearchCtx:
    region: Region
    model: CostModel
    dags: tuple[DependenceDAG, ...]
    crit: tuple[tuple[float, ...], ...]
    config: "SearchConfig"
    stats: "SearchStats"
    best_slots: list[Slot] = field(default_factory=list)
    memo: dict[tuple[frozenset[int], ...], float] = field(default_factory=dict)
    should_stop: Callable[[], bool] | None = None


def _lower_bound(
    ctx: _SearchCtx,
    done: list[frozenset[int]],
    key_counts: dict[tuple, list[int]],
) -> float:
    bound = 0.0
    if ctx.config.use_cp_bound:
        for t, dset in enumerate(done):
            ops_left = (ctx.crit[t][i] for i in range(len(ctx.dags[t])) if i not in dset)
            bound = max(bound, max(ops_left, default=0.0))
    if ctx.config.use_class_bound:
        class_bound = 0.0
        for key, counts in key_counts.items():
            m = max(counts)
            if m:
                # key[0] is the opcode class by construction of merge_key.
                class_bound += m * ctx.model.slot_cost(key[0])
        bound = max(bound, class_bound)
    return bound


def _candidate_moves(
    ctx: _SearchCtx,
    done: list[frozenset[int]],
) -> list[tuple[tuple, dict[int, int]]]:
    """All (merge_key, picks) moves available from this state.

    Per thread and key only the longest-critical-path ready op is offered
    unless ``branch_thread_choices`` asks for all of them.
    """
    region, model, crit = ctx.region, ctx.model, ctx.crit
    per_key: dict[tuple, dict[int, list[int]]] = {}
    for t, dag in enumerate(ctx.dags):
        for i in dag.ready(done[t]):
            key = model.merge_key(region[t].ops[i])
            per_key.setdefault(key, {}).setdefault(t, []).append(i)

    moves: list[tuple[tuple, dict[int, int]]] = []
    # Canonical structured order (not repr order): exploration — and hence
    # any budget-exhausted result — must not depend on float formatting or
    # dict insertion history.
    for key in sorted(per_key, key=merge_key_sort_key):
        threads = per_key[key]
        choices: dict[int, list[int]] = {}
        for t, idxs in threads.items():
            if ctx.config.branch_thread_choices:
                choices[t] = sorted(idxs)
            else:
                choices[t] = [max(idxs, key=lambda i: (crit[t][i], i))]
        tids = sorted(choices)
        if ctx.config.maximal_merges_only:
            thread_subsets: list[tuple[int, ...]] = [tuple(tids)]
        else:
            thread_subsets = [
                subset
                for r in range(len(tids), 0, -1)
                for subset in itertools.combinations(tids, r)
            ]
        for subset in thread_subsets:
            for combo in itertools.product(*(choices[t] for t in subset)):
                moves.append((key, dict(zip(subset, combo))))
    return moves


def _greedy_move_score(ctx: _SearchCtx, move: tuple[tuple, dict[int, int]]) -> tuple:
    key, picks = move
    saved = (len(picks) - 1) * ctx.model.slot_cost(key[0])
    longest = max(ctx.crit[t][i] for t, i in picks.items())
    return (saved, longest, len(picks))


def _dfs(
    ctx: _SearchCtx,
    done: list[frozenset[int]],
    key_counts: dict[tuple, list[int]],
    cost: float,
    slots: list[Slot],
    remaining: int,
) -> None:
    stats, config = ctx.stats, ctx.config
    if remaining == 0:
        if cost < stats.best_cost:
            stats.best_cost = cost
            stats.incumbent_updates += 1
            ctx.best_slots = list(slots)
        return
    if stats.nodes_expanded >= config.node_budget:
        stats.budget_exhausted = True
        return
    # Cooperative cancellation (portfolio racing, deadlines): polled every
    # 256 nodes so the callback costs nothing on the hot path.  A stopped
    # search reports ``budget_exhausted`` — the anytime contract is the
    # same whether the budget ran out or the caller lost interest.
    if (ctx.should_stop is not None
            and not (stats.nodes_expanded & 255) and ctx.should_stop()):
        stats.budget_exhausted = True
        return
    stats.nodes_expanded += 1

    if cost + _lower_bound(ctx, done, key_counts) >= stats.best_cost:
        stats.pruned_by_bound += 1
        return

    if config.use_memo:
        state = tuple(done)
        prev = ctx.memo.get(state)
        if prev is not None and prev <= cost:
            stats.pruned_by_memo += 1
            return
        ctx.memo[state] = cost

    moves = _candidate_moves(ctx, done)
    moves.sort(key=lambda m: _greedy_move_score(ctx, m), reverse=True)
    stats.children_generated += len(moves)

    for key, picks in moves:
        opclass = key[0]
        slot_cost = ctx.model.slot_cost(opclass)
        slots.append(Slot(opclass, picks))
        new_done = list(done)
        for t, i in picks.items():
            new_done[t] = done[t] | {i}
            key_counts[key][t] -= 1
        _dfs(ctx, new_done, key_counts, cost + slot_cost, slots, remaining - len(picks))
        for t in picks:
            key_counts[key][t] += 1
        slots.pop()
        if stats.budget_exhausted:
            return


def legacy_search(
    region: Region,
    model: CostModel,
    config: "SearchConfig",
    dags: tuple[DependenceDAG, ...],
    crit: tuple[tuple[float, ...], ...],
    stats: "SearchStats",
    best_slots: list[Slot],
    should_stop: Callable[[], bool] | None = None,
) -> list[Slot]:
    """Run the reference engine; returns the best slot list found."""
    ctx = _SearchCtx(region=region, model=model, dags=dags, crit=crit,
                     config=config, stats=stats, best_slots=best_slots,
                     should_stop=should_stop)
    key_counts: dict[tuple, list[int]] = {}
    for t, tc in enumerate(region.threads):
        for op in tc.ops:
            key = model.merge_key(op)
            key_counts.setdefault(key, [0] * region.num_threads)[t] += 1
    done = [frozenset() for _ in region.threads]
    _dfs(ctx, done, key_counts, 0.0, [], region.num_ops)
    return ctx.best_slots
