"""Array engine — batched bounds, cached child generation, lazy state.

Where the bitmask engine made each node *cheap* (incremental int-bitmask
state, one running value per bound), the array engine makes most nodes
*nearly free* by reorganising the search around three observations:

1. **Bounds are computable at generation time.**  A child's admissible
   lower bound depends only on the scheduler state it leads to, never on
   the incumbent at the moment it is entered, and the incumbent only
   decreases.  The engine therefore scores and lower-bounds *all*
   candidate children of a node in one batched pass at generation time
   (MASIM-style priority ordering — merge-class scarcity × critical-path
   contribution — is the same pass) and stores ``(slot_cost, bound)``
   inside each move record.  The per-child entry test collapses to two
   float adds and a compare, and a bound-failing child is discarded
   before any of its state — frame, done masks, ready-index deltas — is
   materialised.

2. **Identical states recur and their child batches are pure.**  The DFS
   revisits scheduler states (the same done-sets reached along different
   merge orders) constantly — that is exactly why dominance memoization
   prunes so well.  The child batch of a state (picks, priorities,
   bounds, apply deltas) is a pure function of the state, so the engine
   interns finished batches in a generation cache keyed on the done-mask
   tuple.  A revisit replays the cached, priority-ordered batch without
   touching the ready index at all.

3. **Incremental state can be maintained lazily.**  Cached batches carry
   everything that entry, leaf and backtrack handling need, so the
   ready/bound state is only required on a generation-cache *miss*.  The
   engine keeps an *applied frontier* and batch-applies the pending
   suffix of the current path — replaying apply deltas recorded in the
   move records — only when a miss actually needs the materialised
   state.  Subtrees served entirely from the cache never pay apply/undo.

The DFS stack itself lives in preallocated typed arrays (``array('d')``
/ ``array('l')`` cursors, costs and remaining-op counts); done masks stay
arbitrary-precision Python ints so op counts are unbounded.  When numpy
is available (the ``[fast]`` extra) and a node's ready-key fan-out
reaches :data:`VEC_MIN_KEYS`, the scoring/bounding pass switches to
vectorised float64 arithmetic plus one ``np.lexsort`` for the priority
order; the scalar path computes bit-identical floats, so results never
depend on whether numpy is installed.

Equivalence contract: identical schedules, costs and ``SearchStats``
counters to the legacy oracle, enforced by
``tests/core/test_engine_equivalence.py`` and the fuzz harness.  Like the
bitmask engine, float parity is exact whenever slot costs are exactly
representable; the cached class-bound deltas can differ by ulps from a
fresh summation otherwise.  The ablation move generators
(``maximal_merges_only=False`` / ``branch_thread_choices=True``) violate
the one-move-per-key assumption the batch layout relies on, so those
configurations delegate to the bitmask engine (same results either way).

Move records are 13-slot mutable lists (lists, not tuples, so the lazy
slots can be filled in on first use and then shared through the
generation cache)::

    [saved, longest, width, -kid,          # priority key (sortable as-is)
     is_leaf, slot_cost, bound,            # entry: cost + bound vs incumbent
     picks, deltas, new_contrib, tmaxes,   # apply: ready/class/cp updates
     child_state, child_moves]             # edge links (see below)

Three of the slots are lazy, each paid once per *edge* of the explored
state graph and amortised to zero on revisits:

- ``deltas`` (index 8) — the ready-index apply deltas, recorded on first
  materialisation; children that are always pruned never pay the
  successor scans;
- ``child_state`` (index 11) — the interned done-mask tuple the move
  leads to, computed on first traversal; revisits skip the done-mask
  copy, the bit loop and the tuple hash;
- ``child_moves`` (index 12) — a direct link to the child's interned
  batch, so revisiting an edge skips even the generation-cache lookup.
  Only set when the batch is actually interned, keeping reachable
  memory bounded by the cache capacity.
"""

from __future__ import annotations

from array import array as _typed_array
from typing import TYPE_CHECKING, Callable

from repro.core.costmodel import CostModel, MergeKeyTable
from repro.core.dag import DependenceDAG, ReadyIndex
from repro.core.engines.bitmask import bitmask_search
from repro.core.ops import Region
from repro.core.schedule import Slot

if TYPE_CHECKING:  # pragma: no cover - type-only; avoids an import cycle
    from repro.core.search import SearchConfig, SearchStats

try:  # numpy is optional (the [fast] extra); the scalar path is identical.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    _np = None

__all__ = ["array_search"]

#: Ready-key fan-out at which generation switches to the numpy batch path
#: (below it, array construction costs more than the scalar loop saves).
VEC_MIN_KEYS = 24

#: Generation-cache capacity in distinct scheduler states; when full the
#: cache stops interning new batches (hits keep working, behaviour is
#: unchanged — only speed degrades).
GEN_CACHE_MAX = 1 << 17


def array_search(
    region: Region,
    model: CostModel,
    config: "SearchConfig",
    dags: tuple[DependenceDAG, ...],
    crit: tuple[tuple[float, ...], ...],
    stats: "SearchStats",
    best_slots: list[Slot],
    should_stop: Callable[[], bool] | None = None,
) -> list[Slot]:
    """Run the array engine; returns the best slot list found."""
    if not config.maximal_merges_only or config.branch_thread_choices:
        # Ablation generators produce several moves per merge key; the
        # batched one-record-per-key layout does not apply.  Results are
        # identical by the engines' shared contract, and the caller owns
        # the stats.engine label, so delegation is invisible.
        return bitmask_search(region, model, config, dags, crit, stats,
                              best_slots, should_stop=should_stop)

    num_threads = region.num_threads
    total_ops = region.num_ops
    table = MergeKeyTable(model, region)
    num_keys = len(table)
    index = ReadyIndex(region, dags, table)
    orders = index.pick_orders(crit)

    # True locals for everything the hot loop touches.  ``adone`` is the
    # *applied* done state backing the ready index — it lags the logical
    # path state until a generation miss materialises the pending moves.
    ready = index.ready
    ready_count = index.ready_count
    adone = index.done
    key_of = index.key_of
    pred_masks = index.pred_masks
    succs = index.succs
    slot_costs = table.slot_costs
    opclasses = table.opclasses
    thread_ids = tuple(range(num_threads))
    key_ids = tuple(range(num_keys))

    use_cp = config.use_cp_bound
    use_class = config.use_class_bound
    use_memo = config.use_memo
    node_budget = config.node_budget

    # Remaining-ops-per-(key, thread) counts and the running class bound
    # (same layout and float operation order as the bitmask engine).
    counts: list[list[int]] = [[0] * num_threads for _ in range(num_keys)]
    for t in thread_ids:
        for kid in key_of[t]:
            counts[kid][t] += 1
    contrib = [0.0] * num_keys
    class_bound = 0.0
    for kid in key_ids:
        m = max(counts[kid])
        if m:
            contrib[kid] = m * slot_costs[kid]
            class_bound += contrib[kid]

    crit_sorted = tuple(
        tuple(sorted(range(len(crit[t])), key=lambda i: -crit[t][i]))
        for t in thread_ids)
    thread_max = [max(crit[t], default=0.0) for t in thread_ids]

    # Per-key candidate cache: the widest merge (picks / width / priority
    # score) for each key, recomputed only when an apply or undo touched
    # the key's ready bits.  Entries are rebuilt as fresh lists so move
    # records interned in the generation cache keep stable snapshots.
    cand_picks: list = [None] * num_keys
    cand_width = [0] * num_keys
    cand_saved = [0.0] * num_keys
    cand_longest = [0.0] * num_keys
    dirty = bytearray(b"\x01" * num_keys) if num_keys else bytearray()

    memo: dict[tuple[int, ...], float] = {}
    gen_cache: dict[tuple[int, ...], list] = {}

    nodes_expanded = 0
    children_generated = 0
    pruned_by_bound = 0
    pruned_by_memo = 0
    incumbent_updates = 0
    best_cost = stats.best_cost
    budget_exhausted = False

    def gen_children(
        remaining, class_bound,
        # Default-argument binding: every free variable becomes a true
        # local of the call — this runs once per distinct state.
        key_ids=key_ids, thread_ids=thread_ids, num_threads=num_threads,
        ready=ready, ready_count=ready_count, orders=orders, crit=crit,
        crit_sorted=crit_sorted, slot_costs=slot_costs, counts=counts,
        contrib=contrib, thread_max=thread_max, adone=adone,
        cand_picks=cand_picks, cand_width=cand_width,
        cand_saved=cand_saved, cand_longest=cand_longest, dirty=dirty,
        use_cp=use_cp, use_class=use_class,
    ) -> list:
        """One batched pass over the ready keys: refresh dirty candidate
        entries, score + lower-bound every child, emit records in MASIM
        priority order (saved desc, longest-critical-path desc, width
        desc, key id asc — identical to the legacy stable sort)."""
        ready_kids = []
        rk_append = ready_kids.append
        for kid in key_ids:
            if not ready_count[kid]:
                continue
            if dirty[kid]:
                base = kid * num_threads
                picks: list[tuple[int, int]] = []
                pick = picks.append
                longest = 0.0
                for t in thread_ids:
                    bits = ready[base + t]
                    if not bits:
                        continue
                    for i in orders[base + t]:
                        if (bits >> i) & 1:
                            break
                    pick((t, i))
                    c = crit[t][i]
                    if c > longest:
                        longest = c
                width = len(picks)
                cand_picks[kid] = picks
                cand_width[kid] = width
                cand_longest[kid] = longest
                cand_saved[kid] = (width - 1) * slot_costs[kid]
                dirty[kid] = 0
            rk_append(kid)

        vec = _np is not None and len(ready_kids) >= VEC_MIN_KEYS
        if vec:
            # Vectorised scoring: class-scarcity bound, leafness and the
            # priority order for all ready keys in one float64 batch.
            # The arithmetic mirrors the scalar path operation for
            # operation, so the floats are bit-identical.
            np = _np
            rk = ready_kids
            saved_v = np.array([cand_saved[k] for k in rk])
            longest_v = np.array([cand_longest[k] for k in rk])
            width_v = np.array([cand_width[k] for k in rk])
            kid_v = np.array(rk)
            if use_class:
                cnt_v = np.array([counts[k] for k in rk], dtype=np.int64)
                avail_v = np.array(
                    [[1 if ready[k * num_threads + t] else 0
                      for t in thread_ids] for k in rk], dtype=np.int64)
                m_v = (cnt_v - avail_v).max(axis=1)
                new_contrib_v = m_v * np.array([slot_costs[k] for k in rk])
                class_v = class_bound + (
                    new_contrib_v - np.array([contrib[k] for k in rk]))
                new_contrib_l = new_contrib_v.tolist()
                class_l = class_v.tolist()
            order = np.lexsort((kid_v, -width_v, -longest_v, -saved_v)).tolist()
        else:
            order = range(len(ready_kids))

        moves: list[list] = []
        append = moves.append
        rk = ready_kids
        for j in order:
            kid = rk[j]
            picks = cand_picks[kid]
            width = cand_width[kid]
            slot_cost = slot_costs[kid]
            if width == remaining:
                # Completing move: the child is a leaf — the legacy
                # engine never bounds leaves, so neither do we.
                append([cand_saved[kid], cand_longest[kid], width, -kid,
                        True, slot_cost, 0.0, picks, None, 0.0, None,
                        None, None])
                continue
            bound = 0.0
            tmaxes = None
            if use_cp:
                cp = 0.0
                tmaxes = []
                tadd = tmaxes.append
                pi = 0
                next_t = picks[0][0]
                for t in thread_ids:
                    tm = thread_max[t]
                    if t == next_t:
                        i = picks[pi][1]
                        pi += 1
                        next_t = picks[pi][0] if pi < width else -1
                        if crit[t][i] >= tm:
                            # The picked op is (one of) the thread's
                            # critical max; rescan for the next pending.
                            done_t = adone[t] | (1 << i)
                            tm = 0.0
                            crit_t = crit[t]
                            for j2 in crit_sorted[t]:
                                if not (done_t >> j2) & 1:
                                    tm = crit_t[j2]
                                    break
                        tadd(tm)
                    if tm > cp:
                        cp = tm
                bound = cp
            if use_class:
                if vec:
                    new_contrib = new_contrib_l[j]
                    cb = class_l[j]
                else:
                    cnt = counts[kid]
                    base = kid * num_threads
                    m = 0
                    for t in thread_ids:
                        c = cnt[t] - 1 if ready[base + t] else cnt[t]
                        if c > m:
                            m = c
                    new_contrib = m * slot_cost if m else 0.0
                    cb = class_bound + (new_contrib - contrib[kid])
                if cb > bound:
                    bound = cb
            else:
                new_contrib = 0.0
            append([cand_saved[kid], cand_longest[kid], width, -kid,
                    False, slot_cost, bound, picks, None, new_contrib,
                    tmaxes, None, None])
        if not vec and len(moves) > 1:
            # One move per key, so ``-kid`` makes records unique and the
            # default list comparison never reaches the payload slots.
            moves.sort(reverse=True)
        return moves

    # DFS stack over preallocated typed arrays (costs, cursors, lengths,
    # remaining-op counts) plus object stacks for batches / done masks /
    # undo tokens.  Depth never exceeds the op count.
    cap = total_ops + 1
    st_moves: list = [None] * cap
    st_done: list = [None] * cap
    st_applied: list = [None] * cap
    st_len = _typed_array("l", [0]) * cap
    st_idx = _typed_array("l", [0]) * cap
    st_remaining = _typed_array("l", [0]) * cap
    st_cost = _typed_array("d", [0.0]) * cap

    memo_get = memo.get
    cache_get = gen_cache.get

    # ``applied_depth`` is the applied frontier: the deepest path state
    # materialised in the ready index / running bounds.  Moves between it
    # and the current depth are logically entered but not yet applied.
    applied_depth = 0
    depth = -1

    # Current-frame mirror of ``st_*[depth]`` held in true locals: the
    # cursor and frame values are read on every entry, so they live in
    # locals and are flushed to the stacks only on push / reloaded on pop.
    cur_moves: list = []
    cur_len = 0
    cur_idx = 0
    cur_cost = 0.0
    cur_done: tuple[int, ...] = ()
    cur_remaining = 0

    # -- root node (mirrors one legacy _dfs() prologue; remaining > 0 and
    # budget >= 1 hold whenever total_ops > 0, so only bound/memo apply).
    if total_ops == 0:
        if 0.0 < best_cost:
            best_cost = 0.0
            incumbent_updates += 1
            best_slots[:] = []
    else:
        nodes_expanded = 1
        bound = 0.0
        if use_cp:
            bound = max(thread_max)
        if use_class and class_bound > bound:
            bound = class_bound
        if bound >= best_cost:
            pruned_by_bound += 1
        else:
            root_state = tuple(adone)
            if use_memo:
                memo[root_state] = 0.0
            moves = gen_children(total_ops, class_bound)
            gen_cache[root_state] = moves
            children_generated = len(moves)
            st_moves[0] = moves
            st_len[0] = len(moves)
            st_remaining[0] = total_ops
            st_done[0] = root_state
            depth = 0
            cur_moves = moves
            cur_len = len(moves)
            cur_done = root_state
            cur_remaining = total_ops

    while depth >= 0:
        if budget_exhausted or cur_idx == cur_len:
            # -- pop: reload the parent frame from the stacks ------------
            depth -= 1
            if depth < 0:
                break
            cur_moves = st_moves[depth]
            cur_idx = st_idx[depth]
            cur_len = st_len[depth]
            cur_cost = st_cost[depth]
            cur_done = st_done[depth]
            cur_remaining = st_remaining[depth]
            if applied_depth > depth:
                # Undo the move we just left (it had been materialised).
                mv = cur_moves[cur_idx - 1]
                kid = -mv[3]
                cnt = counts[kid]
                for t, bit, slot, newly in mv[8]:
                    adone[t] &= ~bit
                    ready[slot] |= bit
                    ready_count[kid] += 1
                    cnt[t] += 1
                    for s_slot, s_bit, k2 in newly:
                        ready[s_slot] &= ~s_bit
                        ready_count[k2] -= 1
                        dirty[k2] = 1
                dirty[kid] = 1
                tok = st_applied[depth]
                if use_cp:
                    for (t, _i), old_tmax in zip(mv[7], tok[0]):
                        thread_max[t] = old_tmax
                if use_class:
                    contrib[kid] = tok[1]
                    class_bound = tok[2]
                st_applied[depth] = None
                applied_depth = depth
            continue

        mv = cur_moves[cur_idx]
        cur_idx += 1

        # -- enter the child (mirrors the legacy _dfs() prologue) ----------
        if mv[4]:
            # Leaf: the move completes the schedule.
            child_cost = cur_cost + mv[5]
            if child_cost < best_cost:
                best_cost = child_cost
                incumbent_updates += 1
                # The path moves are moves[idx-1] at each flushed ancestor
                # depth, plus the current (not yet flushed) move.
                best_slots[:] = [
                    Slot(opclasses[-m2[3]], dict(m2[7]))
                    for m2 in [st_moves[d][st_idx[d] - 1]
                               for d in range(depth)] + [mv]
                ]
            continue
        if nodes_expanded >= node_budget:
            budget_exhausted = True
            continue
        # Same cooperative-cancellation poll cadence as the legacy engine.
        if (should_stop is not None and not (nodes_expanded & 255)
                and should_stop()):
            budget_exhausted = True
            continue
        nodes_expanded += 1

        # Generation-time bound, entry-time incumbent: the stored bound is
        # state-pure, and best_cost only decreases, so this one compare is
        # exactly the legacy ``cost + lower_bound >= best_cost`` test.
        child_cost = cur_cost + mv[5]
        if child_cost + mv[6] >= best_cost:
            pruned_by_bound += 1
            continue

        state = mv[11]
        if state is None:
            # First traversal of this edge: intern the child state.
            child_done = list(cur_done)
            for t, i in mv[7]:
                child_done[t] |= 1 << i
            state = tuple(child_done)
            mv[11] = state

        if use_memo:
            prev = memo_get(state)
            if prev is not None and prev <= child_cost:
                pruned_by_memo += 1
                continue
            memo[state] = child_cost

        child_remaining = cur_remaining - mv[2]
        moves = mv[12]
        if moves is None:
            moves = cache_get(state)
            if moves is not None:
                mv[12] = moves
        if moves is None:
            # Miss: materialise the pending suffix of the path (the moves
            # between the applied frontier and here), then batch-generate.
            while applied_depth <= depth:
                d = applied_depth
                amv = mv if d == depth else st_moves[d][st_idx[d] - 1]
                akid = -amv[3]
                cnt = counts[akid]
                deltas = amv[8]
                if deltas is None:
                    # First application of this move anywhere: record its
                    # ready-index deltas (they are state-pure) so every
                    # later apply — including via the generation cache —
                    # is a pure replay with no successor scans.
                    deltas = []
                    abase = akid * num_threads
                    for t, i in amv[7]:
                        bit = 1 << i
                        done_t = adone[t] | bit
                        newly = []
                        pm = pred_masks[t]
                        ko = key_of[t]
                        for s in succs[t][i]:
                            mask = pm[s]
                            if mask & done_t == mask:
                                newly.append(
                                    (ko[s] * num_threads + t, 1 << s, ko[s]))
                        deltas.append((t, bit, abase + t, tuple(newly)))
                    amv[8] = deltas
                old_tmaxes = None
                if use_cp:
                    old_tmaxes = [thread_max[t] for t, _i in amv[7]]
                for t, bit, slot, newly in deltas:
                    adone[t] |= bit
                    ready[slot] &= ~bit
                    ready_count[akid] -= 1
                    cnt[t] -= 1
                    for s_slot, s_bit, k2 in newly:
                        ready[s_slot] |= s_bit
                        ready_count[k2] += 1
                        dirty[k2] = 1
                dirty[akid] = 1
                if use_cp:
                    for (t, _i), new_tmax in zip(amv[7], amv[10]):
                        thread_max[t] = new_tmax
                if use_class:
                    st_applied[d] = (old_tmaxes, contrib[akid], class_bound)
                    nc = amv[9]
                    class_bound += nc - contrib[akid]
                    contrib[akid] = nc
                else:
                    st_applied[d] = (old_tmaxes, 0.0, 0.0)
                applied_depth = d + 1

            moves = gen_children(child_remaining, class_bound)
            if len(gen_cache) < GEN_CACHE_MAX:
                gen_cache[state] = moves
                # Edge links only point at interned batches; a full cache
                # must not grow reachable memory through move records.
                mv[12] = moves

        # -- push: flush the parent cursor, switch the frame locals --------
        children_generated += len(moves)
        st_idx[depth] = cur_idx
        depth += 1
        mlen = len(moves)
        st_moves[depth] = moves
        st_len[depth] = mlen
        st_cost[depth] = child_cost
        st_remaining[depth] = child_remaining
        st_done[depth] = state
        cur_moves = moves
        cur_len = mlen
        cur_idx = 0
        cur_cost = child_cost
        cur_done = state
        cur_remaining = child_remaining

    stats.nodes_expanded = nodes_expanded
    stats.children_generated = children_generated
    stats.pruned_by_bound = pruned_by_bound
    stats.pruned_by_memo = pruned_by_memo
    stats.incumbent_updates = incumbent_updates
    stats.best_cost = best_cost
    stats.budget_exhausted = budget_exhausted
    return best_slots
