"""Bitmask engine — the incremental-state hot path (default engine).

Semantically identical to :func:`repro.core.engines.legacy.legacy_search`
node for node — same exploration order, same pruning decisions, same
counters — but the per-node work is integer arithmetic over preallocated
state.  See :func:`bitmask_search` for the layout.
"""

from __future__ import annotations

import itertools
from operator import itemgetter
from typing import TYPE_CHECKING, Callable

from repro.core.costmodel import CostModel, MergeKeyTable
from repro.core.dag import DependenceDAG, ReadyIndex
from repro.core.ops import Region
from repro.core.schedule import Slot

if TYPE_CHECKING:  # pragma: no cover - type-only; avoids an import cycle
    from repro.core.search import SearchConfig, SearchStats

__all__ = ["bitmask_search"]

_MOVE_ORDER_KEY = itemgetter(0, 1, 2)   # (saved, longest, width)


def bitmask_search(
    region: Region,
    model: CostModel,
    config: "SearchConfig",
    dags: tuple[DependenceDAG, ...],
    crit: tuple[tuple[float, ...], ...],
    stats: "SearchStats",
    best_slots: list[Slot],
    should_stop: Callable[[], bool] | None = None,
) -> list[Slot]:
    """Run the bitmask engine; returns the best slot list found.

    Semantically identical to the legacy engine node for node — same
    exploration order, same pruning decisions, same counters — but the
    per-node work is integer arithmetic over preallocated state:

    - ``done`` per thread is an int bitmask; readiness of op ``i`` is
      ``pred_masks[i] & done == pred_masks[i]``;
    - the ready index (ready ops per merge key per thread) is maintained
      incrementally on apply/undo instead of rescanned, with undo tokens
      recording newly-ready ops as one int mask per completed op;
    - the critical-path bound tracks one running max per thread, recomputed
      only when the completed op *was* that thread's max (a scan over ops
      sorted by remaining path, skipping done bits);
    - the class-count bound is one running float adjusted by the single
      key a move touches;
    - the dominance memo keys on the tuple of int masks;
    - recursion is an explicit stack over preallocated parallel arrays.

    The node loop is deliberately flat and monolithic: at several hundred
    thousand nodes per second every function call, closure-cell access and
    attribute load is measurable, so the enter/apply/undo steps are inlined
    rather than factored, mirroring the legacy ``_dfs`` control flow.
    """
    num_threads = region.num_threads
    total_ops = region.num_ops
    table = MergeKeyTable(model, region)
    num_keys = len(table)
    index = ReadyIndex(region, dags, table)
    orders = index.pick_orders(crit)

    # True locals for everything the per-node loop touches.
    ready = index.ready
    ready_count = index.ready_count
    done = index.done
    key_of = index.key_of
    pred_masks = index.pred_masks
    succs = index.succs
    slot_costs = table.slot_costs
    opclasses = table.opclasses
    thread_ids = tuple(range(num_threads))
    key_ids = tuple(range(num_keys))

    maximal = config.maximal_merges_only
    branch_choices = config.branch_thread_choices
    use_cp = config.use_cp_bound
    use_class = config.use_class_bound
    use_memo = config.use_memo
    node_budget = config.node_budget
    fast_moves = maximal and not branch_choices

    # Remaining-ops-per-(key, thread) counts and the running class bound.
    counts: list[list[int]] = [[0] * num_threads for _ in range(num_keys)]
    for t in thread_ids:
        for kid in key_of[t]:
            counts[kid][t] += 1
    contrib = [0.0] * num_keys
    class_bound = 0.0
    for kid in key_ids:
        m = max(counts[kid])
        if m:
            contrib[kid] = m * slot_costs[kid]
            class_bound += contrib[kid]

    # Running per-thread critical-path max + the scan order for refreshes.
    crit_sorted = tuple(
        tuple(sorted(range(len(crit[t])), key=lambda i: -crit[t][i]))
        for t in thread_ids)
    thread_max = [max(crit[t], default=0.0) for t in thread_ids]

    memo: dict[tuple[int, ...], float] = {}

    nodes_expanded = 0
    children_generated = 0
    pruned_by_bound = 0
    pruned_by_memo = 0
    incumbent_updates = 0
    best_cost = stats.best_cost
    budget_exhausted = False

    def gen_moves(
        # Default-argument binding turns every free variable into a true
        # local of the call — this runs once per expanded node.
        key_ids=key_ids, thread_ids=thread_ids, num_threads=num_threads,
        ready=ready, ready_count=ready_count, orders=orders, crit=crit,
        slot_costs=slot_costs, fast=fast_moves, maximal=maximal,
        branch_choices=branch_choices, move_order=_MOVE_ORDER_KEY,
        product=itertools.product, combinations=itertools.combinations,
    ) -> list:
        """Candidate moves from the current ready index, sorted like the
        legacy engine: canonical key order, then stable-sorted descending
        by (time saved, longest critical path, width).

        Moves are ``(saved, longest, width, -kid, picks)``.  The negated
        key id lets the fast path sort with the default tuple comparison
        (no key function, no per-move key tuples): ``reverse=True`` on
        ``-kid`` means ties on the score triple resolve to ascending key
        id, which is exactly the legacy stable generation order, and the
        fast path has one move per key so ``picks`` is never compared."""
        moves: list[tuple[float, float, int, int, list[tuple[int, int]]]] = []
        append = moves.append
        for kid in key_ids:
            if not ready_count[kid]:
                continue
            base = kid * num_threads
            slot_cost = slot_costs[kid]
            if fast:
                # Fast path: exactly one (widest) move per ready key.
                picks: list[tuple[int, int]] = []
                pick = picks.append
                longest = 0.0
                for t in thread_ids:
                    bits = ready[base + t]
                    if not bits:
                        continue
                    for i in orders[base + t]:
                        if (bits >> i) & 1:
                            break
                    pick((t, i))
                    c = crit[t][i]
                    if c > longest:
                        longest = c
                width = len(picks)
                append(((width - 1) * slot_cost, longest, width,
                        -kid, picks))
                continue
            # General path (exhaustive subset / all-choices ablations):
            # mirrors the legacy generator including its enumeration order.
            choices: dict[int, list[int]] = {}
            for t in thread_ids:
                bits = ready[base + t]
                if not bits:
                    continue
                if branch_choices:
                    idxs = []
                    while bits:
                        low = bits & -bits
                        idxs.append(low.bit_length() - 1)
                        bits ^= low
                    choices[t] = idxs          # ascending op index
                else:
                    for i in orders[base + t]:
                        if (bits >> i) & 1:
                            choices[t] = [i]
                            break
            tids = tuple(choices)              # built in ascending t order
            if maximal:
                subsets: list[tuple[int, ...]] = [tids]
            else:
                subsets = [
                    subset
                    for r in range(len(tids), 0, -1)
                    for subset in combinations(tids, r)
                ]
            for subset in subsets:
                for combo in product(*(choices[t] for t in subset)):
                    picks_t = list(zip(subset, combo))
                    longest = max(crit[t][i] for t, i in picks_t)
                    width = len(picks_t)
                    append(((width - 1) * slot_cost, longest, width,
                            -kid, picks_t))
        if len(moves) > 1:
            if fast:
                moves.sort(reverse=True)
            else:
                # Several moves can share a key here; keep the explicit
                # stable sort on the score triple so generation order is
                # the tie-break, exactly like the legacy engine.
                moves.sort(key=move_order, reverse=True)
        return moves

    # Explicit stack over parallel preallocated arrays; depth never exceeds
    # the op count (every move completes at least one op).  ``st_applied[d]``
    # holds the undo tokens of the move currently applied at depth ``d``
    # (empty means none), so both backtrack sites — child explored and
    # child leaf/pruned — reduce to the same "undo at loop top" step.
    cap = total_ops + 1
    st_moves: list = [None] * cap
    st_len = [0] * cap
    st_idx = [0] * cap
    st_cost = [0.0] * cap
    st_remaining = [0] * cap
    st_kid = [0] * cap
    st_applied: list[list] = [[] for _ in range(cap)]
    st_old_contrib = [0.0] * cap
    st_old_class_bound = [0.0] * cap

    # -- root node (mirrors one legacy _dfs() prologue; remaining > 0 and
    # budget >= 1 hold whenever total_ops > 0, so only bound/memo apply).
    depth = -1
    if total_ops == 0:
        if 0.0 < best_cost:
            best_cost = 0.0
            incumbent_updates += 1
            best_slots[:] = []
    else:
        nodes_expanded = 1
        bound = 0.0
        if use_cp:
            bound = max(thread_max)
        if use_class and class_bound > bound:
            bound = class_bound
        if bound >= best_cost:
            pruned_by_bound += 1
        else:
            if use_memo:
                memo[tuple(done)] = 0.0
            moves = gen_moves()
            children_generated = len(moves)
            st_moves[0] = moves
            st_len[0] = len(moves)
            st_remaining[0] = total_ops
            depth = 0

    while depth >= 0:
        applied = st_applied[depth]
        if applied:
            # Undo the move currently applied at this depth (we are back
            # from its subtree, or the child was a leaf / pruned / budget).
            kid = st_kid[depth]
            cnt = counts[kid]
            base = kid * num_threads
            for t, i, newly_mask, old_tmax in applied:
                ko = key_of[t]
                while newly_mask:
                    low = newly_mask & -newly_mask
                    newly_mask ^= low
                    k2 = ko[low.bit_length() - 1]
                    ready[k2 * num_threads + t] &= ~low
                    ready_count[k2] -= 1
                done[t] &= ~(1 << i)
                ready[base + t] |= 1 << i
                ready_count[kid] += 1
                cnt[t] += 1
                if use_cp:
                    thread_max[t] = old_tmax
            applied.clear()
            if use_class:
                contrib[kid] = st_old_contrib[depth]
                class_bound = st_old_class_bound[depth]

        idx = st_idx[depth]
        if budget_exhausted or idx == st_len[depth]:
            depth -= 1
            continue
        st_idx[depth] = idx + 1
        _saved, _longest, width, kid, picks = st_moves[depth][idx]
        kid = -kid

        # -- apply the move to the shared incremental state ----------------
        cnt = counts[kid]
        base = kid * num_threads
        for t, i in picks:
            bit = 1 << i
            done[t] |= bit
            done_t = done[t]
            ready[base + t] &= ~bit
            ready_count[kid] -= 1
            newly_mask = 0
            pm = pred_masks[t]
            ko = key_of[t]
            for s in succs[t][i]:
                mask = pm[s]
                if mask & done_t == mask:
                    k2 = ko[s]
                    ready[k2 * num_threads + t] |= 1 << s
                    ready_count[k2] += 1
                    newly_mask |= 1 << s
            cnt[t] -= 1
            old_tmax = 0.0
            if use_cp:
                old_tmax = thread_max[t]
                if crit[t][i] >= old_tmax:
                    # The completed op was (one of) the thread's critical
                    # max; rescan in descending-crit order for the first
                    # op still pending.
                    new_tmax = 0.0
                    crit_t = crit[t]
                    for j in crit_sorted[t]:
                        if not (done_t >> j) & 1:
                            new_tmax = crit_t[j]
                            break
                    thread_max[t] = new_tmax
            applied.append((t, i, newly_mask, old_tmax))
        st_kid[depth] = kid
        if use_class:
            st_old_contrib[depth] = contrib[kid]
            st_old_class_bound[depth] = class_bound
            m = max(cnt)
            new_contrib = m * slot_costs[kid] if m else 0.0
            class_bound += new_contrib - contrib[kid]
            contrib[kid] = new_contrib

        # -- enter the child (mirrors the legacy _dfs() prologue) ----------
        child_cost = st_cost[depth] + slot_costs[kid]
        child_remaining = st_remaining[depth] - width
        if child_remaining == 0:
            if child_cost < best_cost:
                best_cost = child_cost
                incumbent_updates += 1
                # The applied moves are exactly moves[idx-1] at each depth.
                best_slots[:] = [
                    Slot(opclasses[-mv[3]], dict(mv[4]))
                    for mv in (st_moves[d][st_idx[d] - 1]
                               for d in range(depth + 1))
                ]
            continue
        if nodes_expanded >= node_budget:
            budget_exhausted = True
            continue
        # Same cooperative-cancellation poll cadence as the legacy engine.
        if (should_stop is not None and not (nodes_expanded & 255)
                and should_stop()):
            budget_exhausted = True
            continue
        nodes_expanded += 1

        bound = 0.0
        if use_cp:
            bound = max(thread_max)
        if use_class and class_bound > bound:
            bound = class_bound
        if child_cost + bound >= best_cost:
            pruned_by_bound += 1
            continue

        if use_memo:
            state = tuple(done)
            prev = memo.get(state)
            if prev is not None and prev <= child_cost:
                pruned_by_memo += 1
                continue
            memo[state] = child_cost

        moves = gen_moves()
        children_generated += len(moves)
        depth += 1
        st_moves[depth] = moves
        st_len[depth] = len(moves)
        st_idx[depth] = 0
        st_cost[depth] = child_cost
        st_remaining[depth] = child_remaining

    stats.nodes_expanded = nodes_expanded
    stats.children_generated = children_generated
    stats.pruned_by_bound = pruned_by_bound
    stats.pruned_by_memo = pruned_by_memo
    stats.incumbent_updates = incumbent_updates
    stats.best_cost = best_cost
    stats.budget_exhausted = budget_exhausted
    return best_slots
