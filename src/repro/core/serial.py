"""Baseline schedules without induction.

Two baselines bracket what a SIMD machine does with MIMD threads when no
common code is induced:

- :func:`serial_schedule` — run each thread to completion in turn, every
  operation in its own slot.  This is the worst case the CSI paper's
  speedups are quoted against: total time is the *sum* of all threads.

- :func:`lockstep_schedule` — the behaviour of the basic MIMD-on-SIMD
  interpreter (supplied text §3.1.1): all threads advance one operation per
  interpreter cycle; within a cycle, each distinct merge key present is
  issued once with all threads needing it enabled.  This already shares
  slots *accidentally* (when threads happen to be aligned) but never
  reorders to create alignment — exactly the gap CSI closes.
"""

from __future__ import annotations

from repro.core.costmodel import CostModel, merge_key_sort_key
from repro.core.ops import Region
from repro.core.schedule import Schedule, Slot

__all__ = ["lockstep_schedule", "serial_schedule"]


def serial_schedule(region: Region, model: CostModel) -> Schedule:
    """One slot per operation, threads strictly one after another."""
    slots: list[Slot] = []
    for tc in region.threads:
        for op in tc.ops:
            slots.append(Slot(model.opcode_class(op.opcode), {tc.thread: op.index}))
    return Schedule(tuple(slots))


def lockstep_schedule(region: Region, model: CostModel) -> Schedule:
    """Interpreter-style lockstep execution in program order.

    Cycle ``k`` looks at operation ``k`` of every thread still running,
    groups them by merge key, and issues one slot per group (deterministic
    order: the canonical merge-key order, so results are reproducible and
    independent of float formatting).
    """
    slots: list[Slot] = []
    depth = max((len(tc) for tc in region.threads), default=0)
    for k in range(depth):
        groups: dict[tuple, dict[int, int]] = {}
        for tc in region.threads:
            if k < len(tc):
                op = tc.ops[k]
                groups.setdefault(model.merge_key(op), {})[tc.thread] = k
        for key in sorted(groups, key=merge_key_sort_key):
            picks = groups[key]
            any_thread = next(iter(picks))
            opclass = model.opcode_class(region[any_thread].ops[picks[any_thread]].opcode)
            slots.append(Slot(opclass, picks))
    return Schedule(tuple(slots))
