"""The CSI scheduler: heavily pruned branch-and-bound search.

Following the paper's outline ("operations from various threads are
classified based on how they could be merged into single instructions
executed by multiple threads, followed by a heavily pruned search to find
the minimum execution time code schedule using these merges"):

1. operations are bucketed by *merge key* (classification / itemization);
2. a depth-first branch-and-bound explores sequences of slots; at each node
   the candidate moves are, for each merge key with ready operations, the
   slot induced over the threads that have one ready;
3. pruning:

   - **incumbent bound** — a node is cut when ``cost + lower_bound``
     reaches the best complete schedule found so far.  Two admissible lower
     bounds are combined: the *critical-path bound* (max over threads of the
     cost-weighted longest remaining dependence path) and the *class-count
     bound* (ops of equal key in the same thread can never merge, so each
     key needs at least ``max_t remaining_t(key)`` slots);
   - **dominance memoization** — the scheduler state is exactly the set of
     completed ops per thread; reaching a previously seen state at equal or
     higher cost is cut;
   - **maximal-merge restriction** (on by default, like the paper's
     pruning) — only the widest slot per merge key is tried.  This keeps
     the branching factor at the number of distinct ready keys; disabling it
     (``maximal_merges_only=False``) restores exhaustive subset enumeration
     for small inputs, which the tests use to measure the heuristic's gap;

4. the greedy list schedule seeds the incumbent — after being verified
   against the independent checker — making the search an anytime
   algorithm: with a node budget it degrades gracefully toward the greedy
   result instead of failing.

Three engines implement the identical search (same schedules, costs and
every :class:`SearchStats` counter, bit for bit — see
:mod:`repro.core.engines`):

- ``engine="bitmask"`` (default) — incremental int-bitmask state over an
  explicit stack; the per-node cost is a handful of int ops.
- ``engine="array"`` — the fastest path: all candidate children of a node
  are scored and lower-bounded in one batched pass at generation time
  (vectorised via numpy past a fan-out threshold, scalar-identical
  without it), bound-failing children are discarded before any frame or
  state is materialised, and finished child batches are interned in a
  generation cache keyed on the done-mask state so revisited states
  replay them without touching the ready index.
- ``engine="legacy"`` — the original frozenset/dict implementation, kept
  as the *reference oracle* (``tests/core/test_engine_equivalence.py``
  enforces counter-exact parity across the pruning-knob matrix).  Parity
  is exact whenever slot costs are exactly representable floats; the
  faster engines' running/cached class-count bound can differ from the
  legacy fresh summation by float-rounding ulps otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable

from repro.core.costmodel import CostModel
from repro.core.dag import DependenceDAG, build_dags
from repro.core.engines import ENGINE_IMPLS, ENGINES
from repro.core.engines.arrayengine import array_search as _array_search
from repro.core.engines.bitmask import bitmask_search as _bitmask_search
from repro.core.engines.legacy import legacy_search as _legacy_search
from repro.core.greedy import greedy_schedule
from repro.core.ops import Region
from repro.core.schedule import Schedule, Slot
from repro.core.verify import verify_schedule

__all__ = ["ENGINES", "SearchConfig", "SearchStats", "branch_and_bound"]

#: Engine-name -> implementation registry (back-compat alias; benchmarks
#: and the equivalence suite time the implementations directly).
_ENGINE_IMPLS = ENGINE_IMPLS


@dataclass(frozen=True)
class SearchConfig:
    """Knobs for :func:`branch_and_bound` (defaults follow the paper)."""

    node_budget: int = 200_000
    maximal_merges_only: bool = True
    branch_thread_choices: bool = False
    respect_order: bool = False
    use_cp_bound: bool = True
    use_class_bound: bool = True
    use_memo: bool = True
    seed_with_greedy: bool = True
    engine: str = "bitmask"

    def __post_init__(self) -> None:
        if self.node_budget < 1:
            raise ValueError(f"node budget must be positive, got {self.node_budget}")
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown search engine {self.engine!r}; expected one of {ENGINES}")


@dataclass
class SearchStats:
    """Counters describing one search run."""

    nodes_expanded: int = 0
    children_generated: int = 0
    pruned_by_bound: int = 0
    pruned_by_memo: int = 0
    best_cost: float = float("inf")
    incumbent_updates: int = 0
    optimal: bool = False
    budget_exhausted: bool = False
    wall_s: float = 0.0
    engine: str = "bitmask"
    #: Filled by the pipeline when the value-numbering pre-pass ran: ops
    #: whose semantic fingerprint collides across threads, and rewrites
    #: actually applied.  Defaulted so cached/wire stats from pre-vn runs
    #: reconstruct unchanged.
    vn_merged_candidates: int = 0
    vn_rewrites: int = 0

    @property
    def nodes_per_second(self) -> float:
        """Search throughput; 0.0 when the wall time was not recorded."""
        return self.nodes_expanded / self.wall_s if self.wall_s > 0 else 0.0


def branch_and_bound(
    region: Region,
    model: CostModel,
    config: SearchConfig | None = None,
    dags: tuple[DependenceDAG, ...] | None = None,
    should_stop: Callable[[], bool] | None = None,
) -> tuple[Schedule, SearchStats]:
    """Run the CSI search; returns the best schedule found and statistics.

    ``stats.optimal`` is true when the search ran to completion within its
    node budget *and* no completeness-losing restriction could have hidden a
    better schedule (i.e. the proof is exact for the configured move set;
    with ``maximal_merges_only`` the claim is relative to maximal merges,
    which the test-suite cross-checks against exhaustive mode on small
    regions).

    ``config.engine`` selects the implementation: ``"bitmask"`` (default),
    ``"array"`` (fastest) or ``"legacy"`` (the reference oracle) — all
    return identical schedules, costs and pruning counters.

    When ``config.seed_with_greedy`` is on (the default), the greedy list
    schedule is *verified* against the independent checker and its cost
    seeds the incumbent for every engine.  The seed is what makes the
    search anytime — and also what gates the pruning, so a buggy-but-cheap
    incumbent would silently prune the true optimum away; verification
    turns that failure mode into a loud :class:`~repro.core.verify.ScheduleError`.

    ``should_stop`` (optional, polled every 256 expanded nodes) requests a
    cooperative early exit: the search returns its incumbent best-so-far
    with ``budget_exhausted=True``, exactly like running out of node
    budget.  The portfolio racer uses this to cancel losing strategies and
    to honor deadlines without killing the process.
    """
    t_start = perf_counter()
    config = config or SearchConfig()
    if dags is None:
        dags = build_dags(region, respect_order=config.respect_order)
    crit = tuple(dag.critical_path_costs(region[t], model) for t, dag in enumerate(dags))
    stats = SearchStats(engine=config.engine)

    best_slots: list[Slot] = []
    if config.seed_with_greedy:
        incumbent = greedy_schedule(region, model, dags=dags)
        verify_schedule(incumbent, region, model, dags=dags)
        stats.best_cost = incumbent.cost(model)
        best_slots = list(incumbent.slots)

    best_slots = ENGINE_IMPLS[config.engine](
        region, model, config, dags, crit, stats, best_slots,
        should_stop=should_stop)

    stats.optimal = not stats.budget_exhausted
    stats.wall_s = perf_counter() - t_start
    if not best_slots and region.num_ops:
        raise RuntimeError("search produced no schedule (empty incumbent and no leaf reached)")
    return Schedule(tuple(best_slots)), stats
