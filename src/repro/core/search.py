"""The CSI scheduler: heavily pruned branch-and-bound search.

Following the paper's outline ("operations from various threads are
classified based on how they could be merged into single instructions
executed by multiple threads, followed by a heavily pruned search to find
the minimum execution time code schedule using these merges"):

1. operations are bucketed by *merge key* (classification / itemization);
2. a depth-first branch-and-bound explores sequences of slots; at each node
   the candidate moves are, for each merge key with ready operations, the
   slot induced over the threads that have one ready;
3. pruning:

   - **incumbent bound** — a node is cut when ``cost + lower_bound``
     reaches the best complete schedule found so far.  Two admissible lower
     bounds are combined: the *critical-path bound* (max over threads of the
     cost-weighted longest remaining dependence path) and the *class-count
     bound* (ops of equal key in the same thread can never merge, so each
     key needs at least ``max_t remaining_t(key)`` slots);
   - **dominance memoization** — the scheduler state is exactly the set of
     completed ops per thread; reaching a previously seen state at equal or
     higher cost is cut;
   - **maximal-merge restriction** (on by default, like the paper's
     pruning) — only the widest slot per merge key is tried.  This keeps
     the branching factor at the number of distinct ready keys; disabling it
     (``maximal_merges_only=False``) restores exhaustive subset enumeration
     for small inputs, which the tests use to measure the heuristic's gap;

4. the greedy list schedule seeds the incumbent, making the search an
   anytime algorithm: with a node budget it degrades gracefully toward the
   greedy result instead of failing.

Two engines implement the identical search:

- ``engine="bitmask"`` (default) — the hot path.  Thread done-sets are
  plain ``int`` bitmasks, readiness is one mask test against precomputed
  predecessor masks, the ready-ops-by-merge-key index is maintained
  incrementally across push/pop (:class:`repro.core.dag.ReadyIndex`), both
  lower bounds are running values updated per move, merge keys are interned
  to dense ints (:class:`repro.core.costmodel.MergeKeyTable`), the memo is
  keyed on tuples of int masks, and the recursion is an explicit-stack loop
  over preallocated frame arrays.  The per-node cost is a handful of int
  ops — no frozensets, no dict rebuilds, no rescans.
- ``engine="legacy"`` — the original frozenset/dict implementation, kept
  as the *reference oracle*: the bitmask engine must reproduce its
  schedules, costs and every :class:`SearchStats` counter bit-for-bit
  (``tests/core/test_engine_equivalence.py`` enforces this across the
  pruning-knob matrix).  Counter parity is exact whenever slot costs are
  exactly representable floats; the running class-count bound can differ
  from the legacy fresh summation by float-rounding ulps otherwise.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from operator import itemgetter
from time import perf_counter
from typing import Callable

from repro.core.costmodel import CostModel, MergeKeyTable, merge_key_sort_key
from repro.core.dag import DependenceDAG, ReadyIndex, build_dags
from repro.core.greedy import greedy_schedule
from repro.core.ops import Region
from repro.core.schedule import Schedule, Slot

__all__ = ["ENGINES", "SearchConfig", "SearchStats", "branch_and_bound"]

#: Known search engine implementations (identical results, different speed).
ENGINES = ("bitmask", "legacy")


@dataclass(frozen=True)
class SearchConfig:
    """Knobs for :func:`branch_and_bound` (defaults follow the paper)."""

    node_budget: int = 200_000
    maximal_merges_only: bool = True
    branch_thread_choices: bool = False
    respect_order: bool = False
    use_cp_bound: bool = True
    use_class_bound: bool = True
    use_memo: bool = True
    seed_with_greedy: bool = True
    engine: str = "bitmask"

    def __post_init__(self) -> None:
        if self.node_budget < 1:
            raise ValueError(f"node budget must be positive, got {self.node_budget}")
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown search engine {self.engine!r}; expected one of {ENGINES}")


@dataclass
class SearchStats:
    """Counters describing one search run."""

    nodes_expanded: int = 0
    children_generated: int = 0
    pruned_by_bound: int = 0
    pruned_by_memo: int = 0
    best_cost: float = float("inf")
    incumbent_updates: int = 0
    optimal: bool = False
    budget_exhausted: bool = False
    wall_s: float = 0.0
    engine: str = "bitmask"

    @property
    def nodes_per_second(self) -> float:
        """Search throughput; 0.0 when the wall time was not recorded."""
        return self.nodes_expanded / self.wall_s if self.wall_s > 0 else 0.0


# ---------------------------------------------------------------------------
# Legacy engine — the reference oracle.
#
# This is the original frozenset/dict implementation, preserved verbatim.
# It defines the search semantics the bitmask engine must reproduce exactly
# (schedules, costs and all pruning counters); the equivalence property
# tests diff the two engines against each other, so changes here must be
# mirrored below and vice versa.
# ---------------------------------------------------------------------------


@dataclass
class _SearchCtx:
    region: Region
    model: CostModel
    dags: tuple[DependenceDAG, ...]
    crit: tuple[tuple[float, ...], ...]
    config: SearchConfig
    stats: SearchStats
    best_slots: list[Slot] = field(default_factory=list)
    memo: dict[tuple[frozenset[int], ...], float] = field(default_factory=dict)
    should_stop: Callable[[], bool] | None = None


def _lower_bound(
    ctx: _SearchCtx,
    done: list[frozenset[int]],
    key_counts: dict[tuple, list[int]],
) -> float:
    bound = 0.0
    if ctx.config.use_cp_bound:
        for t, dset in enumerate(done):
            ops_left = (ctx.crit[t][i] for i in range(len(ctx.dags[t])) if i not in dset)
            bound = max(bound, max(ops_left, default=0.0))
    if ctx.config.use_class_bound:
        class_bound = 0.0
        for key, counts in key_counts.items():
            m = max(counts)
            if m:
                # key[0] is the opcode class by construction of merge_key.
                class_bound += m * ctx.model.slot_cost(key[0])
        bound = max(bound, class_bound)
    return bound


def _candidate_moves(
    ctx: _SearchCtx,
    done: list[frozenset[int]],
) -> list[tuple[tuple, dict[int, int]]]:
    """All (merge_key, picks) moves available from this state.

    Per thread and key only the longest-critical-path ready op is offered
    unless ``branch_thread_choices`` asks for all of them.
    """
    region, model, crit = ctx.region, ctx.model, ctx.crit
    per_key: dict[tuple, dict[int, list[int]]] = {}
    for t, dag in enumerate(ctx.dags):
        for i in dag.ready(done[t]):
            key = model.merge_key(region[t].ops[i])
            per_key.setdefault(key, {}).setdefault(t, []).append(i)

    moves: list[tuple[tuple, dict[int, int]]] = []
    # Canonical structured order (not repr order): exploration — and hence
    # any budget-exhausted result — must not depend on float formatting or
    # dict insertion history.
    for key in sorted(per_key, key=merge_key_sort_key):
        threads = per_key[key]
        choices: dict[int, list[int]] = {}
        for t, idxs in threads.items():
            if ctx.config.branch_thread_choices:
                choices[t] = sorted(idxs)
            else:
                choices[t] = [max(idxs, key=lambda i: (crit[t][i], i))]
        tids = sorted(choices)
        if ctx.config.maximal_merges_only:
            thread_subsets: list[tuple[int, ...]] = [tuple(tids)]
        else:
            thread_subsets = [
                subset
                for r in range(len(tids), 0, -1)
                for subset in itertools.combinations(tids, r)
            ]
        for subset in thread_subsets:
            for combo in itertools.product(*(choices[t] for t in subset)):
                moves.append((key, dict(zip(subset, combo))))
    return moves


def _greedy_move_score(ctx: _SearchCtx, move: tuple[tuple, dict[int, int]]) -> tuple:
    key, picks = move
    saved = (len(picks) - 1) * ctx.model.slot_cost(key[0])
    longest = max(ctx.crit[t][i] for t, i in picks.items())
    return (saved, longest, len(picks))


def _dfs(
    ctx: _SearchCtx,
    done: list[frozenset[int]],
    key_counts: dict[tuple, list[int]],
    cost: float,
    slots: list[Slot],
    remaining: int,
) -> None:
    stats, config = ctx.stats, ctx.config
    if remaining == 0:
        if cost < stats.best_cost:
            stats.best_cost = cost
            stats.incumbent_updates += 1
            ctx.best_slots = list(slots)
        return
    if stats.nodes_expanded >= config.node_budget:
        stats.budget_exhausted = True
        return
    # Cooperative cancellation (portfolio racing, deadlines): polled every
    # 256 nodes so the callback costs nothing on the hot path.  A stopped
    # search reports ``budget_exhausted`` — the anytime contract is the
    # same whether the budget ran out or the caller lost interest.
    if (ctx.should_stop is not None
            and not (stats.nodes_expanded & 255) and ctx.should_stop()):
        stats.budget_exhausted = True
        return
    stats.nodes_expanded += 1

    if cost + _lower_bound(ctx, done, key_counts) >= stats.best_cost:
        stats.pruned_by_bound += 1
        return

    if config.use_memo:
        state = tuple(done)
        prev = ctx.memo.get(state)
        if prev is not None and prev <= cost:
            stats.pruned_by_memo += 1
            return
        ctx.memo[state] = cost

    moves = _candidate_moves(ctx, done)
    moves.sort(key=lambda m: _greedy_move_score(ctx, m), reverse=True)
    stats.children_generated += len(moves)

    for key, picks in moves:
        opclass = key[0]
        slot_cost = ctx.model.slot_cost(opclass)
        slots.append(Slot(opclass, picks))
        new_done = list(done)
        for t, i in picks.items():
            new_done[t] = done[t] | {i}
            key_counts[key][t] -= 1
        _dfs(ctx, new_done, key_counts, cost + slot_cost, slots, remaining - len(picks))
        for t in picks:
            key_counts[key][t] += 1
        slots.pop()
        if stats.budget_exhausted:
            return


def _legacy_search(
    region: Region,
    model: CostModel,
    config: SearchConfig,
    dags: tuple[DependenceDAG, ...],
    crit: tuple[tuple[float, ...], ...],
    stats: SearchStats,
    best_slots: list[Slot],
    should_stop: Callable[[], bool] | None = None,
) -> list[Slot]:
    """Run the reference engine; returns the best slot list found."""
    ctx = _SearchCtx(region=region, model=model, dags=dags, crit=crit,
                     config=config, stats=stats, best_slots=best_slots,
                     should_stop=should_stop)
    key_counts: dict[tuple, list[int]] = {}
    for t, tc in enumerate(region.threads):
        for op in tc.ops:
            key = model.merge_key(op)
            key_counts.setdefault(key, [0] * region.num_threads)[t] += 1
    done = [frozenset() for _ in region.threads]
    _dfs(ctx, done, key_counts, 0.0, [], region.num_ops)
    return ctx.best_slots


# ---------------------------------------------------------------------------
# Bitmask engine — the hot path.
# ---------------------------------------------------------------------------

_MOVE_ORDER_KEY = itemgetter(0, 1, 2)   # (saved, longest, width)


def _bitmask_search(
    region: Region,
    model: CostModel,
    config: SearchConfig,
    dags: tuple[DependenceDAG, ...],
    crit: tuple[tuple[float, ...], ...],
    stats: SearchStats,
    best_slots: list[Slot],
    should_stop: Callable[[], bool] | None = None,
) -> list[Slot]:
    """Run the bitmask engine; returns the best slot list found.

    Semantically identical to :func:`_legacy_search` node for node — same
    exploration order, same pruning decisions, same counters — but the
    per-node work is integer arithmetic over preallocated state:

    - ``done`` per thread is an int bitmask; readiness of op ``i`` is
      ``pred_masks[i] & done == pred_masks[i]``;
    - the ready index (ready ops per merge key per thread) is maintained
      incrementally on apply/undo instead of rescanned, with undo tokens
      recording newly-ready ops as one int mask per completed op;
    - the critical-path bound tracks one running max per thread, recomputed
      only when the completed op *was* that thread's max (a scan over ops
      sorted by remaining path, skipping done bits);
    - the class-count bound is one running float adjusted by the single
      key a move touches;
    - the dominance memo keys on the tuple of int masks;
    - recursion is an explicit stack over preallocated parallel arrays.

    The node loop is deliberately flat and monolithic: at several hundred
    thousand nodes per second every function call, closure-cell access and
    attribute load is measurable, so the enter/apply/undo steps are inlined
    rather than factored, mirroring the legacy ``_dfs`` control flow.
    """
    num_threads = region.num_threads
    total_ops = region.num_ops
    table = MergeKeyTable(model, region)
    num_keys = len(table)
    index = ReadyIndex(region, dags, table)
    orders = index.pick_orders(crit)

    # True locals for everything the per-node loop touches.
    ready = index.ready
    ready_count = index.ready_count
    done = index.done
    key_of = index.key_of
    pred_masks = index.pred_masks
    succs = index.succs
    slot_costs = table.slot_costs
    opclasses = table.opclasses
    thread_ids = tuple(range(num_threads))
    key_ids = tuple(range(num_keys))

    maximal = config.maximal_merges_only
    branch_choices = config.branch_thread_choices
    use_cp = config.use_cp_bound
    use_class = config.use_class_bound
    use_memo = config.use_memo
    node_budget = config.node_budget
    fast_moves = maximal and not branch_choices

    # Remaining-ops-per-(key, thread) counts and the running class bound.
    counts: list[list[int]] = [[0] * num_threads for _ in range(num_keys)]
    for t in thread_ids:
        for kid in key_of[t]:
            counts[kid][t] += 1
    contrib = [0.0] * num_keys
    class_bound = 0.0
    for kid in key_ids:
        m = max(counts[kid])
        if m:
            contrib[kid] = m * slot_costs[kid]
            class_bound += contrib[kid]

    # Running per-thread critical-path max + the scan order for refreshes.
    crit_sorted = tuple(
        tuple(sorted(range(len(crit[t])), key=lambda i: -crit[t][i]))
        for t in thread_ids)
    thread_max = [max(crit[t], default=0.0) for t in thread_ids]

    memo: dict[tuple[int, ...], float] = {}

    nodes_expanded = 0
    children_generated = 0
    pruned_by_bound = 0
    pruned_by_memo = 0
    incumbent_updates = 0
    best_cost = stats.best_cost
    budget_exhausted = False

    def gen_moves(
        # Default-argument binding turns every free variable into a true
        # local of the call — this runs once per expanded node.
        key_ids=key_ids, thread_ids=thread_ids, num_threads=num_threads,
        ready=ready, ready_count=ready_count, orders=orders, crit=crit,
        slot_costs=slot_costs, fast=fast_moves, maximal=maximal,
        branch_choices=branch_choices, move_order=_MOVE_ORDER_KEY,
        product=itertools.product, combinations=itertools.combinations,
    ) -> list:
        """Candidate moves from the current ready index, sorted like the
        legacy engine: canonical key order, then stable-sorted descending
        by (time saved, longest critical path, width).

        Moves are ``(saved, longest, width, -kid, picks)``.  The negated
        key id lets the fast path sort with the default tuple comparison
        (no key function, no per-move key tuples): ``reverse=True`` on
        ``-kid`` means ties on the score triple resolve to ascending key
        id, which is exactly the legacy stable generation order, and the
        fast path has one move per key so ``picks`` is never compared."""
        moves: list[tuple[float, float, int, int, list[tuple[int, int]]]] = []
        append = moves.append
        for kid in key_ids:
            if not ready_count[kid]:
                continue
            base = kid * num_threads
            slot_cost = slot_costs[kid]
            if fast:
                # Fast path: exactly one (widest) move per ready key.
                picks: list[tuple[int, int]] = []
                pick = picks.append
                longest = 0.0
                for t in thread_ids:
                    bits = ready[base + t]
                    if not bits:
                        continue
                    for i in orders[base + t]:
                        if (bits >> i) & 1:
                            break
                    pick((t, i))
                    c = crit[t][i]
                    if c > longest:
                        longest = c
                width = len(picks)
                append(((width - 1) * slot_cost, longest, width,
                        -kid, picks))
                continue
            # General path (exhaustive subset / all-choices ablations):
            # mirrors the legacy generator including its enumeration order.
            choices: dict[int, list[int]] = {}
            for t in thread_ids:
                bits = ready[base + t]
                if not bits:
                    continue
                if branch_choices:
                    idxs = []
                    while bits:
                        low = bits & -bits
                        idxs.append(low.bit_length() - 1)
                        bits ^= low
                    choices[t] = idxs          # ascending op index
                else:
                    for i in orders[base + t]:
                        if (bits >> i) & 1:
                            choices[t] = [i]
                            break
            tids = tuple(choices)              # built in ascending t order
            if maximal:
                subsets: list[tuple[int, ...]] = [tids]
            else:
                subsets = [
                    subset
                    for r in range(len(tids), 0, -1)
                    for subset in combinations(tids, r)
                ]
            for subset in subsets:
                for combo in product(*(choices[t] for t in subset)):
                    picks_t = list(zip(subset, combo))
                    longest = max(crit[t][i] for t, i in picks_t)
                    width = len(picks_t)
                    append(((width - 1) * slot_cost, longest, width,
                            -kid, picks_t))
        if len(moves) > 1:
            if fast:
                moves.sort(reverse=True)
            else:
                # Several moves can share a key here; keep the explicit
                # stable sort on the score triple so generation order is
                # the tie-break, exactly like the legacy engine.
                moves.sort(key=move_order, reverse=True)
        return moves

    # Explicit stack over parallel preallocated arrays; depth never exceeds
    # the op count (every move completes at least one op).  ``st_applied[d]``
    # holds the undo tokens of the move currently applied at depth ``d``
    # (empty means none), so both backtrack sites — child explored and
    # child leaf/pruned — reduce to the same "undo at loop top" step.
    cap = total_ops + 1
    st_moves: list = [None] * cap
    st_len = [0] * cap
    st_idx = [0] * cap
    st_cost = [0.0] * cap
    st_remaining = [0] * cap
    st_kid = [0] * cap
    st_applied: list[list] = [[] for _ in range(cap)]
    st_old_contrib = [0.0] * cap
    st_old_class_bound = [0.0] * cap

    # -- root node (mirrors one legacy _dfs() prologue; remaining > 0 and
    # budget >= 1 hold whenever total_ops > 0, so only bound/memo apply).
    depth = -1
    if total_ops == 0:
        if 0.0 < best_cost:
            best_cost = 0.0
            incumbent_updates += 1
            best_slots[:] = []
    else:
        nodes_expanded = 1
        bound = 0.0
        if use_cp:
            bound = max(thread_max)
        if use_class and class_bound > bound:
            bound = class_bound
        if bound >= best_cost:
            pruned_by_bound += 1
        else:
            if use_memo:
                memo[tuple(done)] = 0.0
            moves = gen_moves()
            children_generated = len(moves)
            st_moves[0] = moves
            st_len[0] = len(moves)
            st_remaining[0] = total_ops
            depth = 0

    while depth >= 0:
        applied = st_applied[depth]
        if applied:
            # Undo the move currently applied at this depth (we are back
            # from its subtree, or the child was a leaf / pruned / budget).
            kid = st_kid[depth]
            cnt = counts[kid]
            base = kid * num_threads
            for t, i, newly_mask, old_tmax in applied:
                ko = key_of[t]
                while newly_mask:
                    low = newly_mask & -newly_mask
                    newly_mask ^= low
                    k2 = ko[low.bit_length() - 1]
                    ready[k2 * num_threads + t] &= ~low
                    ready_count[k2] -= 1
                done[t] &= ~(1 << i)
                ready[base + t] |= 1 << i
                ready_count[kid] += 1
                cnt[t] += 1
                if use_cp:
                    thread_max[t] = old_tmax
            applied.clear()
            if use_class:
                contrib[kid] = st_old_contrib[depth]
                class_bound = st_old_class_bound[depth]

        idx = st_idx[depth]
        if budget_exhausted or idx == st_len[depth]:
            depth -= 1
            continue
        st_idx[depth] = idx + 1
        _saved, _longest, width, kid, picks = st_moves[depth][idx]
        kid = -kid

        # -- apply the move to the shared incremental state ----------------
        cnt = counts[kid]
        base = kid * num_threads
        for t, i in picks:
            bit = 1 << i
            done[t] |= bit
            done_t = done[t]
            ready[base + t] &= ~bit
            ready_count[kid] -= 1
            newly_mask = 0
            pm = pred_masks[t]
            ko = key_of[t]
            for s in succs[t][i]:
                mask = pm[s]
                if mask & done_t == mask:
                    k2 = ko[s]
                    ready[k2 * num_threads + t] |= 1 << s
                    ready_count[k2] += 1
                    newly_mask |= 1 << s
            cnt[t] -= 1
            old_tmax = 0.0
            if use_cp:
                old_tmax = thread_max[t]
                if crit[t][i] >= old_tmax:
                    # The completed op was (one of) the thread's critical
                    # max; rescan in descending-crit order for the first
                    # op still pending.
                    new_tmax = 0.0
                    crit_t = crit[t]
                    for j in crit_sorted[t]:
                        if not (done_t >> j) & 1:
                            new_tmax = crit_t[j]
                            break
                    thread_max[t] = new_tmax
            applied.append((t, i, newly_mask, old_tmax))
        st_kid[depth] = kid
        if use_class:
            st_old_contrib[depth] = contrib[kid]
            st_old_class_bound[depth] = class_bound
            m = max(cnt)
            new_contrib = m * slot_costs[kid] if m else 0.0
            class_bound += new_contrib - contrib[kid]
            contrib[kid] = new_contrib

        # -- enter the child (mirrors the legacy _dfs() prologue) ----------
        child_cost = st_cost[depth] + slot_costs[kid]
        child_remaining = st_remaining[depth] - width
        if child_remaining == 0:
            if child_cost < best_cost:
                best_cost = child_cost
                incumbent_updates += 1
                # The applied moves are exactly moves[idx-1] at each depth.
                best_slots[:] = [
                    Slot(opclasses[-mv[3]], dict(mv[4]))
                    for mv in (st_moves[d][st_idx[d] - 1]
                               for d in range(depth + 1))
                ]
            continue
        if nodes_expanded >= node_budget:
            budget_exhausted = True
            continue
        # Same cooperative-cancellation poll cadence as the legacy engine.
        if (should_stop is not None and not (nodes_expanded & 255)
                and should_stop()):
            budget_exhausted = True
            continue
        nodes_expanded += 1

        bound = 0.0
        if use_cp:
            bound = max(thread_max)
        if use_class and class_bound > bound:
            bound = class_bound
        if child_cost + bound >= best_cost:
            pruned_by_bound += 1
            continue

        if use_memo:
            state = tuple(done)
            prev = memo.get(state)
            if prev is not None and prev <= child_cost:
                pruned_by_memo += 1
                continue
            memo[state] = child_cost

        moves = gen_moves()
        children_generated += len(moves)
        depth += 1
        st_moves[depth] = moves
        st_len[depth] = len(moves)
        st_idx[depth] = 0
        st_cost[depth] = child_cost
        st_remaining[depth] = child_remaining

    stats.nodes_expanded = nodes_expanded
    stats.children_generated = children_generated
    stats.pruned_by_bound = pruned_by_bound
    stats.pruned_by_memo = pruned_by_memo
    stats.incumbent_updates = incumbent_updates
    stats.best_cost = best_cost
    stats.budget_exhausted = budget_exhausted
    return best_slots


_ENGINE_IMPLS = {"bitmask": _bitmask_search, "legacy": _legacy_search}


def branch_and_bound(
    region: Region,
    model: CostModel,
    config: SearchConfig | None = None,
    dags: tuple[DependenceDAG, ...] | None = None,
    should_stop: Callable[[], bool] | None = None,
) -> tuple[Schedule, SearchStats]:
    """Run the CSI search; returns the best schedule found and statistics.

    ``stats.optimal`` is true when the search ran to completion within its
    node budget *and* no completeness-losing restriction could have hidden a
    better schedule (i.e. the proof is exact for the configured move set;
    with ``maximal_merges_only`` the claim is relative to maximal merges,
    which the test-suite cross-checks against exhaustive mode on small
    regions).

    ``config.engine`` selects the implementation: ``"bitmask"`` (default,
    the fast path) or ``"legacy"`` (the reference oracle) — both return
    identical schedules, costs and pruning counters.

    ``should_stop`` (optional, polled every 256 expanded nodes) requests a
    cooperative early exit: the search returns its incumbent best-so-far
    with ``budget_exhausted=True``, exactly like running out of node
    budget.  The portfolio racer uses this to cancel losing strategies and
    to honor deadlines without killing the process.
    """
    t_start = perf_counter()
    config = config or SearchConfig()
    if dags is None:
        dags = build_dags(region, respect_order=config.respect_order)
    crit = tuple(dag.critical_path_costs(region[t], model) for t, dag in enumerate(dags))
    stats = SearchStats(engine=config.engine)

    best_slots: list[Slot] = []
    if config.seed_with_greedy:
        incumbent = greedy_schedule(region, model, dags=dags)
        stats.best_cost = incumbent.cost(model)
        best_slots = list(incumbent.slots)

    best_slots = _ENGINE_IMPLS[config.engine](
        region, model, config, dags, crit, stats, best_slots,
        should_stop=should_stop)

    stats.optimal = not stats.budget_exhausted
    stats.wall_s = perf_counter() - t_start
    if not best_slots and region.num_ops:
        raise RuntimeError("search produced no schedule (empty incumbent and no leaf reached)")
    return Schedule(tuple(best_slots)), stats
