"""The CSI scheduler: heavily pruned branch-and-bound search.

Following the paper's outline ("operations from various threads are
classified based on how they could be merged into single instructions
executed by multiple threads, followed by a heavily pruned search to find
the minimum execution time code schedule using these merges"):

1. operations are bucketed by *merge key* (classification / itemization);
2. a depth-first branch-and-bound explores sequences of slots; at each node
   the candidate moves are, for each merge key with ready operations, the
   slot induced over the threads that have one ready;
3. pruning:

   - **incumbent bound** — a node is cut when ``cost + lower_bound``
     reaches the best complete schedule found so far.  Two admissible lower
     bounds are combined: the *critical-path bound* (max over threads of the
     cost-weighted longest remaining dependence path) and the *class-count
     bound* (ops of equal key in the same thread can never merge, so each
     key needs at least ``max_t remaining_t(key)`` slots);
   - **dominance memoization** — the scheduler state is exactly the set of
     completed ops per thread; reaching a previously seen state at equal or
     higher cost is cut;
   - **maximal-merge restriction** (on by default, like the paper's
     pruning) — only the widest slot per merge key is tried.  This keeps
     the branching factor at the number of distinct ready keys; disabling it
     (``maximal_merges_only=False``) restores exhaustive subset enumeration
     for small inputs, which the tests use to measure the heuristic's gap;

4. the greedy list schedule seeds the incumbent, making the search an
   anytime algorithm: with a node budget it degrades gracefully toward the
   greedy result instead of failing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from time import perf_counter

from repro.core.costmodel import CostModel, merge_key_sort_key
from repro.core.dag import DependenceDAG, build_dags
from repro.core.greedy import greedy_schedule
from repro.core.ops import Region
from repro.core.schedule import Schedule, Slot

__all__ = ["SearchConfig", "SearchStats", "branch_and_bound"]


@dataclass(frozen=True)
class SearchConfig:
    """Knobs for :func:`branch_and_bound` (defaults follow the paper)."""

    node_budget: int = 200_000
    maximal_merges_only: bool = True
    branch_thread_choices: bool = False
    respect_order: bool = False
    use_cp_bound: bool = True
    use_class_bound: bool = True
    use_memo: bool = True
    seed_with_greedy: bool = True

    def __post_init__(self) -> None:
        if self.node_budget < 1:
            raise ValueError(f"node budget must be positive, got {self.node_budget}")


@dataclass
class SearchStats:
    """Counters describing one search run."""

    nodes_expanded: int = 0
    children_generated: int = 0
    pruned_by_bound: int = 0
    pruned_by_memo: int = 0
    best_cost: float = float("inf")
    incumbent_updates: int = 0
    optimal: bool = False
    budget_exhausted: bool = False
    wall_s: float = 0.0


@dataclass
class _SearchCtx:
    region: Region
    model: CostModel
    dags: tuple[DependenceDAG, ...]
    crit: tuple[tuple[float, ...], ...]
    config: SearchConfig
    stats: SearchStats
    best_slots: list[Slot] = field(default_factory=list)
    memo: dict[tuple[frozenset[int], ...], float] = field(default_factory=dict)


def _lower_bound(
    ctx: _SearchCtx,
    done: list[frozenset[int]],
    key_counts: dict[tuple, list[int]],
) -> float:
    bound = 0.0
    if ctx.config.use_cp_bound:
        for t, dset in enumerate(done):
            ops_left = (ctx.crit[t][i] for i in range(len(ctx.dags[t])) if i not in dset)
            bound = max(bound, max(ops_left, default=0.0))
    if ctx.config.use_class_bound:
        class_bound = 0.0
        for key, counts in key_counts.items():
            m = max(counts)
            if m:
                # key[0] is the opcode class by construction of merge_key.
                class_bound += m * ctx.model.slot_cost(key[0])
        bound = max(bound, class_bound)
    return bound


def _candidate_moves(
    ctx: _SearchCtx,
    done: list[frozenset[int]],
) -> list[tuple[tuple, dict[int, int]]]:
    """All (merge_key, picks) moves available from this state.

    Per thread and key only the longest-critical-path ready op is offered
    unless ``branch_thread_choices`` asks for all of them.
    """
    region, model, crit = ctx.region, ctx.model, ctx.crit
    per_key: dict[tuple, dict[int, list[int]]] = {}
    for t, dag in enumerate(ctx.dags):
        for i in dag.ready(done[t]):
            key = model.merge_key(region[t].ops[i])
            per_key.setdefault(key, {}).setdefault(t, []).append(i)

    moves: list[tuple[tuple, dict[int, int]]] = []
    # Canonical structured order (not repr order): exploration — and hence
    # any budget-exhausted result — must not depend on float formatting or
    # dict insertion history.
    for key in sorted(per_key, key=merge_key_sort_key):
        threads = per_key[key]
        choices: dict[int, list[int]] = {}
        for t, idxs in threads.items():
            if ctx.config.branch_thread_choices:
                choices[t] = sorted(idxs)
            else:
                choices[t] = [max(idxs, key=lambda i: (crit[t][i], i))]
        tids = sorted(choices)
        if ctx.config.maximal_merges_only:
            thread_subsets: list[tuple[int, ...]] = [tuple(tids)]
        else:
            thread_subsets = [
                subset
                for r in range(len(tids), 0, -1)
                for subset in itertools.combinations(tids, r)
            ]
        for subset in thread_subsets:
            for combo in itertools.product(*(choices[t] for t in subset)):
                moves.append((key, dict(zip(subset, combo))))
    return moves


def _greedy_move_score(ctx: _SearchCtx, move: tuple[tuple, dict[int, int]]) -> tuple:
    key, picks = move
    saved = (len(picks) - 1) * ctx.model.slot_cost(key[0])
    longest = max(ctx.crit[t][i] for t, i in picks.items())
    return (saved, longest, len(picks))


def _dfs(
    ctx: _SearchCtx,
    done: list[frozenset[int]],
    key_counts: dict[tuple, list[int]],
    cost: float,
    slots: list[Slot],
    remaining: int,
) -> None:
    stats, config = ctx.stats, ctx.config
    if remaining == 0:
        if cost < stats.best_cost:
            stats.best_cost = cost
            stats.incumbent_updates += 1
            ctx.best_slots = list(slots)
        return
    if stats.nodes_expanded >= config.node_budget:
        stats.budget_exhausted = True
        return
    stats.nodes_expanded += 1

    if cost + _lower_bound(ctx, done, key_counts) >= stats.best_cost:
        stats.pruned_by_bound += 1
        return

    if config.use_memo:
        state = tuple(done)
        prev = ctx.memo.get(state)
        if prev is not None and prev <= cost:
            stats.pruned_by_memo += 1
            return
        ctx.memo[state] = cost

    moves = _candidate_moves(ctx, done)
    moves.sort(key=lambda m: _greedy_move_score(ctx, m), reverse=True)
    stats.children_generated += len(moves)

    for key, picks in moves:
        opclass = key[0]
        slot_cost = ctx.model.slot_cost(opclass)
        slots.append(Slot(opclass, picks))
        new_done = list(done)
        for t, i in picks.items():
            new_done[t] = done[t] | {i}
            key_counts[key][t] -= 1
        _dfs(ctx, new_done, key_counts, cost + slot_cost, slots, remaining - len(picks))
        for t in picks:
            key_counts[key][t] += 1
        slots.pop()
        if stats.budget_exhausted:
            return


def branch_and_bound(
    region: Region,
    model: CostModel,
    config: SearchConfig | None = None,
    dags: tuple[DependenceDAG, ...] | None = None,
) -> tuple[Schedule, SearchStats]:
    """Run the CSI search; returns the best schedule found and statistics.

    ``stats.optimal`` is true when the search ran to completion within its
    node budget *and* no completeness-losing restriction could have hidden a
    better schedule (i.e. the proof is exact for the configured move set;
    with ``maximal_merges_only`` the claim is relative to maximal merges,
    which the test-suite cross-checks against exhaustive mode on small
    regions).
    """
    t_start = perf_counter()
    config = config or SearchConfig()
    if dags is None:
        dags = build_dags(region, respect_order=config.respect_order)
    crit = tuple(dag.critical_path_costs(region[t], model) for t, dag in enumerate(dags))
    stats = SearchStats()
    ctx = _SearchCtx(region=region, model=model, dags=dags, crit=crit,
                     config=config, stats=stats)

    if config.seed_with_greedy:
        incumbent = greedy_schedule(region, model, dags=dags)
        stats.best_cost = incumbent.cost(model)
        ctx.best_slots = list(incumbent.slots)

    key_counts: dict[tuple, list[int]] = {}
    for t, tc in enumerate(region.threads):
        for op in tc.ops:
            key = model.merge_key(op)
            key_counts.setdefault(key, [0] * region.num_threads)[t] += 1

    done = [frozenset() for _ in region.threads]
    _dfs(ctx, done, key_counts, 0.0, [], region.num_ops)

    stats.optimal = not stats.budget_exhausted
    stats.wall_s = perf_counter() - t_start
    if not ctx.best_slots and region.num_ops:
        raise RuntimeError("search produced no schedule (empty incumbent and no leaf reached)")
    return Schedule(tuple(ctx.best_slots)), stats
