"""SIMD cost model and mergeability rules.

The cost model answers the two questions CSI's scheduler needs:

1. *Which operations may share a slot?*  Two operations from different
   threads are mergeable iff they map to the same *opcode class* — the same
   interpreter handler / SIMD code body.  Per-PE operands (register contents,
   memory addresses via indirect addressing) may differ freely; on hardware
   without per-PE register indexing (the MasPar MP-1 restriction, supplied
   text §3.1.3.1) immediates/register numbers must also agree, which is the
   ``require_equal_imm`` switch.

2. *What does a slot cost?*  A slot's cost is the class's issue cost plus a
   fixed masking overhead for setting the PE enable set.  Crucially, SIMD
   execution time is *not* proportional to the number of enabled PEs
   (supplied text §3.1.3.3: "two PEs executing a multiply takes much less
   time than two multiply operations executed sequentially"), so a slot
   shared by eight threads costs the same as a slot used by one — this is
   exactly the saving CSI hunts for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.core.ops import Operation, Region

__all__ = ["CostModel", "MergeKeyTable", "maspar_cost_model",
           "merge_key_sort_key", "uniform_cost_model"]


def merge_key_sort_key(key: tuple) -> tuple:
    """Canonical total order for merge keys, independent of ``repr``.

    Merge keys are ``(class,)`` or ``(class, imm)`` tuples with
    ``imm: int | float | None``.  Sorting them by ``repr`` — the scheduler's
    original tie-break — makes exploration order depend on float formatting
    and is fragile against dict-insertion accidents, which changes
    budget-exhausted search results between equivalent regions.  This key
    compares each component structurally instead: by type rank, then by
    numeric value (``1`` and ``1.0`` order identically) or string value.
    """
    canon = []
    for part in key:
        if part is None:
            canon.append((0, 0.0, ""))
        elif isinstance(part, (int, float)) and not isinstance(part, bool):
            canon.append((1, float(part), ""))
        else:
            canon.append((2, 0.0, str(part)))
    return (len(key), tuple(canon))


@dataclass(frozen=True)
class CostModel:
    """Opcode classification and slot timing for a SIMD target.

    Parameters
    ----------
    class_of:
        Maps opcode -> class name.  Opcodes absent from the map form their
        own singleton class (class name == opcode).
    class_cost:
        Maps class name -> issue cost in abstract cycles.  Classes absent
        from the map cost ``default_cost``.
    mask_overhead:
        Fixed cost added to every slot for computing/loading the PE enable
        mask.
    default_cost:
        Issue cost for classes not listed in ``class_cost``.
    require_equal_imm:
        If true, operations merge only when their immediates are equal
        (models SIMD targets whose broadcast instruction stream embeds the
        immediate, or which lack per-PE register indexing).
    """

    class_of: Mapping[str, str] = field(default_factory=dict)
    class_cost: Mapping[str, float] = field(default_factory=dict)
    mask_overhead: float = 1.0
    default_cost: float = 2.0
    require_equal_imm: bool = False

    def __post_init__(self) -> None:
        if self.mask_overhead < 0:
            raise ValueError(f"negative mask overhead {self.mask_overhead}")
        if self.default_cost <= 0:
            raise ValueError(f"non-positive default cost {self.default_cost}")
        for cls, cost in self.class_cost.items():
            if cost <= 0:
                raise ValueError(f"non-positive cost {cost} for class {cls!r}")
        # Freeze the mappings so the dataclass is genuinely immutable/hashable
        # by identity of contents.
        object.__setattr__(self, "class_of", MappingProxyType(dict(self.class_of)))
        object.__setattr__(self, "class_cost", MappingProxyType(dict(self.class_cost)))

    def __getstate__(self) -> dict:
        # MappingProxyType is not picklable; ship plain dicts so cost models
        # cross process boundaries (parallel windowed induction).
        return {
            "class_of": dict(self.class_of),
            "class_cost": dict(self.class_cost),
            "mask_overhead": self.mask_overhead,
            "default_cost": self.default_cost,
            "require_equal_imm": self.require_equal_imm,
        }

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)
        object.__setattr__(self, "class_of", MappingProxyType(dict(state["class_of"])))
        object.__setattr__(self, "class_cost", MappingProxyType(dict(state["class_cost"])))

    def opcode_class(self, opcode: str) -> str:
        """Class name for ``opcode`` (singleton class if unmapped)."""
        return self.class_of.get(opcode, opcode)

    def cost_of_class(self, cls: str) -> float:
        """Issue cost of one slot of class ``cls`` (mask overhead excluded)."""
        return self.class_cost.get(cls, self.default_cost)

    def op_cost(self, op: Operation) -> float:
        """Issue cost of ``op``'s class."""
        return self.cost_of_class(self.opcode_class(op.opcode))

    def slot_cost(self, cls: str) -> float:
        """Total cost of a slot of class ``cls`` including masking."""
        return self.cost_of_class(cls) + self.mask_overhead

    def mergeable(self, a: Operation, b: Operation) -> bool:
        """True iff ``a`` and ``b`` may occupy the same slot.

        Requires distinct threads (a thread executes at most one op per
        slot), equal opcode class and — under ``require_equal_imm`` — equal
        immediates.
        """
        if a.thread == b.thread:
            return False
        if self.opcode_class(a.opcode) != self.opcode_class(b.opcode):
            return False
        if self.require_equal_imm and a.imm != b.imm:
            return False
        return True

    def merge_key(self, op: Operation) -> tuple:
        """Hashable key such that ops merge iff their keys are equal.

        This is the grouping ("itemization") step of CSI: the scheduler
        never compares operations pairwise, it buckets them by this key.
        """
        if self.require_equal_imm:
            return (self.opcode_class(op.opcode), op.imm)
        return (self.opcode_class(op.opcode),)


class MergeKeyTable:
    """Per-search interning of merge keys to dense small ints.

    The schedulers bucket operations by :meth:`CostModel.merge_key` at every
    step; hashing and comparing those ``(class, imm)`` tuples is a large
    slice of per-node cost.  This table computes each op's key once per
    search and hands the hot loops plain ints instead: id order equals the
    canonical :func:`merge_key_sort_key` order, so iterating ids ascending
    *is* the schedulers' canonical key exploration order, and per-key
    lookups (slot cost, opcode class) become tuple indexing.
    """

    __slots__ = ("keys", "ids_by_thread", "opclasses", "slot_costs")

    def __init__(self, model: CostModel, region: Region) -> None:
        raw = [[model.merge_key(op) for op in tc.ops] for tc in region.threads]
        keys = sorted({key for row in raw for key in row}, key=merge_key_sort_key)
        index = {key: kid for kid, key in enumerate(keys)}
        #: Interned keys in canonical order; ``keys[kid]`` is the tuple form.
        self.keys: tuple[tuple, ...] = tuple(keys)
        #: ``ids_by_thread[t][i]`` — key id of op ``i`` of thread ``t``.
        self.ids_by_thread: tuple[tuple[int, ...], ...] = tuple(
            tuple(index[key] for key in row) for row in raw)
        #: ``opclasses[kid]`` — the key's opcode class (``key[0]``).
        self.opclasses: tuple[str, ...] = tuple(key[0] for key in keys)
        #: ``slot_costs[kid]`` — ``model.slot_cost(key[0])``, precomputed.
        self.slot_costs: tuple[float, ...] = tuple(
            model.slot_cost(key[0]) for key in keys)

    def __len__(self) -> int:
        return len(self.keys)


#: Relative issue costs loosely calibrated to the MasPar MP-1's interpreted
#: MIMD instruction set: 4-bit ALU slices make multiply/divide much more
#: expensive than add; router traffic (LdD/StD — parallel subscripting) and
#: mono broadcast (StS) dominate; control flow is cheap once decoded.
_MASPAR_CLASS_COST: dict[str, float] = {
    "push": 2.0,
    "pop": 1.0,
    "ld": 6.0,        # local memory: 16 PEs share an 8-bit memory port
    "st": 6.0,
    "lds": 6.0,       # mono load == local load on the MP-1 (supplied text §3.1.4)
    "sts": 14.0,      # pick winner + broadcast to every PE's copy
    "ldd": 22.0,      # global router round trip
    "std": 22.0,
    "add": 3.0,
    "sub": 3.0,
    "neg": 2.0,
    "shl": 3.0,
    "shr": 3.0,
    "and": 2.0,
    "or": 2.0,
    "not": 2.0,
    "eq": 3.0,
    "ne": 3.0,
    "lt": 3.0,
    "le": 3.0,
    "gt": 3.0,
    "ge": 3.0,
    "mul": 24.0,      # 32-bit multiply on 4-bit slices
    "div": 40.0,
    "mod": 42.0,
    "fadd": 30.0,
    "fmul": 36.0,
    "fdiv": 60.0,
    "jmp": 1.0,
    "jz": 2.0,
    "call": 4.0,
    "ret": 3.0,
    "wait": 4.0,
    "halt": 1.0,
}


def maspar_cost_model(mask_overhead: float = 1.0, require_equal_imm: bool = False) -> CostModel:
    """Cost model with MasPar-MP-1-flavoured relative instruction costs."""
    return CostModel(
        class_of={},
        class_cost=dict(_MASPAR_CLASS_COST),
        mask_overhead=mask_overhead,
        default_cost=3.0,
        require_equal_imm=require_equal_imm,
    )


def uniform_cost_model(cost: float = 1.0, mask_overhead: float = 0.0) -> CostModel:
    """Every opcode is its own class with identical cost.

    Useful in tests and in the pure slot-count formulation of the problem
    (minimum common supersequence flavour).
    """
    return CostModel(class_of={}, class_cost={}, mask_overhead=mask_overhead,
                     default_cost=cost)
