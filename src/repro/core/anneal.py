"""Simulated-annealing induction.

A middle point between the greedy list scheduler (fast, myopic) and the
exact branch-and-bound (optimal, exponential): anneal over *op priorities*.

The schedule builder is a keyed list scheduler: at every step the ready
operations are bucketed by merge key and the bucket with the best
``(cost saved, mean priority)`` is issued.  The annealer perturbs one
operation's priority at a time and accepts by the Metropolis rule on the
resulting schedule cost.  Because every priority vector produces a *valid*
schedule by construction, the search space has no infeasible states —
moves are always legal, only better or worse.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

try:  # numpy is the [fast] extra; the annealer is the only core user.
    import numpy as np
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    np = None

from repro.core.costmodel import CostModel
from repro.core.dag import DependenceDAG, build_dags
from repro.core.ops import Region
from repro.core.schedule import Schedule, Slot
from repro.util.rng import make_rng, resolve_seed

__all__ = ["AnnealStats", "anneal_schedule"]


@dataclass
class AnnealStats:
    """Annealing run counters."""

    steps: int = 0
    accepted: int = 0
    improved: int = 0
    initial_cost: float = 0.0
    best_cost: float = 0.0


def _keyed_schedule(
    region: Region,
    model: CostModel,
    dags: tuple[DependenceDAG, ...],
    priority: dict[tuple[int, int], float],
) -> Schedule:
    """List schedule driven by per-op priorities (always valid)."""
    done: list[set[int]] = [set() for _ in region.threads]
    remaining = region.num_ops
    slots: list[Slot] = []
    while remaining:
        buckets: dict[tuple, dict[int, int]] = {}
        for t, dag in enumerate(dags):
            best_per_key: dict[tuple, int] = {}
            for i in dag.ready(frozenset(done[t])):
                key = model.merge_key(region[t].ops[i])
                prev = best_per_key.get(key)
                if prev is None or priority[(t, i)] > priority[(t, prev)]:
                    best_per_key[key] = i
            for key, i in best_per_key.items():
                buckets.setdefault(key, {})[t] = i

        def score(item):
            key, picks = item
            saved = (len(picks) - 1) * model.slot_cost(key[0])
            mean_priority = sum(priority[(t, i)] for t, i in picks.items()) / len(picks)
            return (saved, mean_priority, len(picks), repr(key))

        key, picks = max(buckets.items(), key=score)
        slots.append(Slot(key[0], picks))
        for t, i in picks.items():
            done[t].add(i)
        remaining -= len(picks)
    return Schedule(tuple(slots))


def anneal_schedule(
    region: Region,
    model: CostModel,
    seed: int | np.random.Generator | None = None,
    steps: int = 400,
    initial_temperature: float | None = None,
    cooling: float = 0.99,
    respect_order: bool = False,
    dags: tuple[DependenceDAG, ...] | None = None,
    should_stop: Callable[[], bool] | None = None,
) -> tuple[Schedule, AnnealStats]:
    """Anneal op priorities; returns the best schedule seen and stats.

    Priorities start at the ops' remaining critical paths (so step 0
    reproduces the greedy heuristic's preference) and drift from there.
    Deterministic for a given seed.  ``seed=None`` resolves through
    :func:`repro.util.rng.resolve_seed` — ``$REPRO_SEED`` when set, else
    the historical default of 0 — so the single seed knob that drives the
    fuzzer and the benchmarks reaches the annealer too (previously a
    hardcoded ``seed=0`` default silently ignored it).

    ``should_stop`` (polled once per step) requests a cooperative early
    exit with the best schedule found so far — used by the portfolio racer
    to cancel a losing anneal and to honor deadlines.
    """
    if np is None:
        raise RuntimeError(
            "anneal_schedule requires numpy; install it with the [fast] "
            "extra (pip install repro[fast])")
    if steps < 0:
        raise ValueError(f"negative step count {steps}")
    if not 0.0 < cooling <= 1.0:
        raise ValueError(f"cooling must be in (0, 1], got {cooling}")
    if seed is None:
        seed = resolve_seed(default=0)
    rng = make_rng(seed)
    if dags is None:
        dags = build_dags(region, respect_order=respect_order)
    crit = tuple(dag.critical_path_costs(region[t], model)
                 for t, dag in enumerate(dags))
    priority = {(t, i): crit[t][i]
                for t, dag in enumerate(dags) for i in range(len(dag))}
    op_keys = list(priority)
    stats = AnnealStats()
    if not op_keys:
        empty = Schedule(())
        return empty, stats

    current = _keyed_schedule(region, model, dags, priority)
    current_cost = current.cost(model)
    best, best_cost = current, current_cost
    stats.initial_cost = current_cost
    scale = max(1.0, float(np.mean([model.op_cost(op) for op in region.all_ops()])))
    temperature = initial_temperature if initial_temperature is not None else 2.0 * scale

    for _ in range(steps):
        if should_stop is not None and should_stop():
            break
        stats.steps += 1
        t, i = op_keys[int(rng.integers(len(op_keys)))]
        old = priority[(t, i)]
        priority[(t, i)] = old + float(rng.normal(0.0, scale))
        candidate = _keyed_schedule(region, model, dags, priority)
        cost = candidate.cost(model)
        delta = cost - current_cost
        if delta <= 0 or float(rng.random()) < math.exp(-delta / max(temperature, 1e-9)):
            stats.accepted += 1
            current, current_cost = candidate, cost
            if cost < best_cost - 1e-12:
                stats.improved += 1
                best, best_cost = candidate, cost
        else:
            priority[(t, i)] = old
        temperature *= cooling

    stats.best_cost = best_cost
    return best, stats
