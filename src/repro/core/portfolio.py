"""Portfolio strategy racing with a self-improving selector.

The paper's induction is one fixed branch-and-bound; ComPar-style systems
show that *racing* several optimizers and keeping the best output per
input beats any single one.  :func:`run_portfolio` races the existing
strategies — exact search, greedy list scheduling, simulated annealing and
the serial baseline — in threads under one deadline:

- every strategy that produces a schedule has it **verified** before it
  can become the incumbent, so a buggy strategy can never win a race;
- the race keeps a shared incumbent (best verified cost so far) and a
  schedule-independent **region lower bound** (max of the critical-path
  and class-count bounds).  Once the incumbent meets that bound no
  strategy can beat it, so every cooperative strategy is cancelled via
  its ``should_stop`` hook and the race ends early with a *proven*
  optimum;
- when the deadline fires, cooperative strategies are stopped and asked
  for their best-so-far; the winner is the cheapest verified schedule,
  decided by ``(cost, canonical strategy order)`` — never by thread
  arrival order, so races are deterministic under a fixed seed;
- a race where *nothing* finished still returns a verified greedy
  schedule (built synchronously after the deadline) flagged
  ``degraded=True`` — strictly better than the old degrade-to-greedy
  service path, which threw away any partial search progress.

Every race is also a training example.  The region is folded into a small
feature vector (:func:`region_features`), coarsened into a bucket key
(:func:`feature_bucket`), and the per-strategy outcomes are recorded into
a :class:`repro.sched.StrategyOutcomesStore`.  On later requests the
store's :meth:`~repro.sched.StrategyOutcomesStore.rank` orders strategies
best-first for that bucket and names historical losers to skip, so a warm
service reaches the winning strategy faster over time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Mapping, Sequence

from repro.core.anneal import anneal_schedule
from repro.core.costmodel import CostModel
from repro.core.dag import DependenceDAG, build_dags
from repro.core.greedy import greedy_schedule
from repro.core.ops import Region
from repro.core.result import ResultBase
from repro.core.schedule import Schedule
from repro.core.search import SearchConfig, SearchStats, branch_and_bound
from repro.core.serial import lockstep_schedule, serial_schedule
from repro.core.verify import verify_schedule
from repro.obs import NULL_TRACER, Tracer, attach_context, current_context, span
from repro.obs.metrics import get_registry
from repro.util.rng import resolve_seed

__all__ = [
    "PORTFOLIO_STRATEGIES",
    "PortfolioResult",
    "StrategyOutcome",
    "feature_bucket",
    "region_features",
    "region_lower_bound",
    "run_portfolio",
]

#: Canonical strategy order.  Doubles as the deterministic tie-break for
#: equal-cost winners: earlier entries win ties, so the exact search beats
#: greedy beats anneal beats serial at equal cost.
PORTFOLIO_STRATEGIES = ("search", "greedy", "anneal", "serial")

#: Seconds granted past the deadline for cooperative strategies to notice
#: their stop flag and hand back a best-so-far schedule.
_CANCEL_GRACE_S = 1.0

#: Incumbent-vs-lower-bound comparisons use this absolute slack.
_EPS = 1e-9


# ---------------------------------------------------------------------------
# Region features — the selector's input.
# ---------------------------------------------------------------------------


def region_features(region: Region, model: CostModel) -> dict[str, float]:
    """Small numeric description of a region for the strategy selector.

    Chosen to be cheap (one pass over the ops) and to separate the regimes
    where different strategies win: tiny regions (search proves optimality
    instantly), wide regions with heavy key sharing (greedy/anneal find
    most merges), and regions with little sharing (serial is already near
    the bound).
    """
    threads = region.num_threads
    ops = region.num_ops
    per_key_threads: dict[tuple, set[int]] = {}
    for op in region.all_ops():
        per_key_threads.setdefault(model.merge_key(op), set()).add(op.thread)
    keys = len(per_key_threads)
    shared = sum(1 for ts in per_key_threads.values() if len(ts) > 1)
    return {
        "threads": float(threads),
        "ops": float(ops),
        "mean_thread_len": ops / threads if threads else 0.0,
        "distinct_keys": float(keys),
        "shared_key_fraction": shared / keys if keys else 0.0,
    }


def feature_bucket(features: Mapping[str, float]) -> str:
    """Coarse string key for the outcomes store.

    Exact thread count, op count rounded to its power-of-two bucket, and
    key sharing quantized to quarters — coarse enough that repeat traffic
    lands in warm buckets, fine enough that the regimes above stay apart.
    """
    ops = int(features.get("ops", 0.0))
    pow2 = 1
    while pow2 < ops:
        pow2 *= 2
    sharing = features.get("shared_key_fraction", 0.0)
    quarter = min(4, int(sharing * 4.0 + 0.5))
    return (f"t{int(features.get('threads', 0.0))}"
            f"_ops{pow2}_share{quarter * 25}")


def region_lower_bound(
    region: Region,
    model: CostModel,
    dags: tuple[DependenceDAG, ...] | None = None,
) -> float:
    """Schedule-independent lower bound on any valid schedule's cost.

    The max of the paper's two admissible bounds evaluated at the root
    state: the longest critical path through any thread's dependence DAG,
    and the class-count bound (each merge key needs at least ``max`` ops
    of that key per thread slots).  An incumbent at this bound is optimal
    and the race can stop everyone.
    """
    if dags is None:
        dags = build_dags(region)
    cp_bound = 0.0
    for t, dag in enumerate(dags):
        crit = dag.critical_path_costs(region[t], model)
        cp_bound = max(cp_bound, max(crit, default=0.0))
    counts: dict[tuple, dict[int, int]] = {}
    for op in region.all_ops():
        key = model.merge_key(op)
        cell = counts.setdefault(key, {})
        cell[op.thread] = cell.get(op.thread, 0) + 1
    class_bound = sum(max(cell.values()) * model.slot_cost(key[0])
                      for key, cell in counts.items())
    return max(cp_bound, class_bound)


# ---------------------------------------------------------------------------
# Race bookkeeping.
# ---------------------------------------------------------------------------


@dataclass
class StrategyOutcome:
    """One strategy's contribution to one race."""

    strategy: str
    cost: float | None = None
    time_to_best_s: float | None = None
    wall_s: float = 0.0
    finished: bool = False
    error: str | None = None
    schedule: Schedule | None = None
    stats: SearchStats | None = None
    skipped: bool = False

    def as_dict(self) -> dict[str, Any]:
        """Wire shape consumed by ``StrategyOutcomesStore.record``."""
        return {
            "strategy": self.strategy,
            "cost": self.cost,
            "time_to_best_s": self.time_to_best_s,
            "wall_s": self.wall_s,
            "finished": self.finished,
            "error": self.error,
            "skipped": self.skipped,
        }


@dataclass(frozen=True)
class PortfolioResult(ResultBase):
    """Outcome of one portfolio race (unified result protocol).

    ``stats`` carries the winning strategy's search statistics when the
    winner ran the branch-and-bound; ``optimal`` is claimed only when the
    race *proved* the incumbent (it met the region lower bound, or the
    winning search completed within budget).
    """

    method: str
    schedule: Schedule
    cost: float
    serial_cost: float
    lockstep_cost: float
    stats: SearchStats | None = None
    cache_hit: bool = False
    wall_s: float = 0.0
    degraded: bool = False
    winner: str | None = None
    outcomes: tuple[StrategyOutcome, ...] = ()
    features: Mapping[str, float] = field(default_factory=dict)
    bucket: str = ""
    lower_bound: float = 0.0
    proven: bool = False

    kind = "portfolio"

    @property
    def optimal(self) -> bool:
        return bool(self.proven) and not self.degraded

    def as_dict(self, include_schedule: bool = False) -> dict[str, Any]:
        out = super().as_dict(include_schedule=include_schedule)
        out["winner"] = self.winner
        out["portfolio"] = {
            "bucket": self.bucket,
            "features": dict(self.features),
            "lower_bound": self.lower_bound,
            "proven": bool(self.proven),
            "outcomes": [o.as_dict() for o in self.outcomes],
        }
        return out


class _RaceState:
    """Shared incumbent + cancellation flags, guarded by one lock."""

    def __init__(self, lower_bound: float, deadline_at: float | None) -> None:
        self.lock = threading.Lock()
        self.lower_bound = lower_bound
        self.deadline_at = deadline_at
        self.stop = threading.Event()
        self.best_cost = float("inf")
        self.best_strategy: str | None = None
        self.best_at: float | None = None

    def should_stop(self) -> bool:
        """Cooperative-cancel predicate polled inside strategies."""
        if self.stop.is_set():
            return True
        if self.deadline_at is not None and perf_counter() >= self.deadline_at:
            self.stop.set()
            return True
        return False

    def offer(self, strategy: str, cost: float, now: float) -> None:
        """Install a verified schedule as incumbent if it is the best yet.

        An incumbent that meets the region lower bound is provably optimal
        — nobody can beat it, so the whole race is cancelled.
        """
        with self.lock:
            if cost < self.best_cost - _EPS:
                self.best_cost = cost
                self.best_strategy = strategy
                self.best_at = now
            if self.best_cost <= self.lower_bound + _EPS:
                self.stop.set()


# ---------------------------------------------------------------------------
# Strategy builders.
#
# One entry per racable strategy: (region, model, config, dags, should_stop,
# seed) -> (schedule, search_stats | None).  A dict (rather than inline
# dispatch) so tests can monkeypatch a crashing or hanging strategy into
# the race without touching the real implementations.
# ---------------------------------------------------------------------------


def _build_search(region, model, config, dags, should_stop, seed):
    schedule, stats = branch_and_bound(region, model, config, dags=dags,
                                       should_stop=should_stop)
    return schedule, stats


def _build_greedy(region, model, config, dags, should_stop, seed):
    return greedy_schedule(region, model, dags=dags), None


def _build_anneal(region, model, config, dags, should_stop, seed):
    schedule, _stats = anneal_schedule(region, model, seed=seed, dags=dags,
                                       should_stop=should_stop)
    return schedule, None


def _build_serial(region, model, config, dags, should_stop, seed):
    return serial_schedule(region, model), None


_BUILDERS: dict[str, Callable] = {
    "search": _build_search,
    "greedy": _build_greedy,
    "anneal": _build_anneal,
    "serial": _build_serial,
}


def _race_one(
    name: str,
    outcome: StrategyOutcome,
    state: _RaceState,
    t0: float,
    region: Region,
    model: CostModel,
    config: SearchConfig | None,
    dags: tuple[DependenceDAG, ...],
    seed: int,
    verify: bool,
    tracer: Tracer,
    ctx: Mapping[str, str] | None,
) -> None:
    """Thread body: run one strategy, verify, offer to the incumbent.

    Exceptions are captured into the outcome — one crashing strategy must
    not poison the race or kill its siblings.
    """
    with attach_context(ctx):
        with span("portfolio.strategy", tracer, strategy=name) as live:
            try:
                schedule, stats = _BUILDERS[name](
                    region, model, config, dags, state.should_stop, seed)
                if verify:
                    verify_schedule(schedule, region, model, dags=dags)
                now = perf_counter()
                cost = schedule.cost(model)
                outcome.schedule = schedule
                outcome.stats = stats
                outcome.cost = cost
                outcome.time_to_best_s = now - t0
                outcome.wall_s = now - t0
                outcome.finished = True
                state.offer(name, cost, now)
                live.set(cost=cost, finished=True)
            except Exception as exc:  # noqa: BLE001 — isolate crashes
                outcome.error = f"{type(exc).__name__}: {exc}"
                outcome.wall_s = perf_counter() - t0
                live.set(error=outcome.error, finished=False)


def run_portfolio(
    region: Region,
    model: CostModel,
    config: SearchConfig | None = None,
    *,
    deadline_s: float | None = None,
    verify: bool = True,
    strategies: Sequence[str] | None = None,
    order: Sequence[str] | None = None,
    skip: Sequence[str] | None = None,
    store=None,
    seed: int | None = None,
    tracer: Tracer | None = None,
) -> PortfolioResult:
    """Race induction strategies concurrently; return the best verified one.

    ``strategies`` restricts the portfolio (default: all of
    :data:`PORTFOLIO_STRATEGIES`).  ``order``/``skip`` are selector hints
    — typically produced by ``StrategyOutcomesStore.rank`` and shipped
    over the service wire; when ``store`` is given and no explicit hints
    are, the store is consulted directly, and the race's outcomes are
    recorded back into it afterwards (the self-improving loop).

    The winner is decided by ``(verified cost, canonical strategy
    order)`` over every strategy that produced a schedule — including
    cooperatively cancelled ones, whose best-so-far is still a valid
    schedule.  With no deadline the race simply runs every strategy to
    completion.  A race where nothing produced a schedule before
    ``deadline + grace`` falls back to a synchronous verified greedy
    schedule with ``degraded=True``.
    """
    tracer = tracer or NULL_TRACER
    metrics = get_registry()
    chosen = tuple(strategies) if strategies is not None else PORTFOLIO_STRATEGIES
    unknown = [s for s in chosen if s not in _BUILDERS]
    if unknown:
        raise ValueError(
            f"unknown portfolio strategies {unknown}; "
            f"expected a subset of {sorted(_BUILDERS)}")
    if not chosen:
        raise ValueError("portfolio needs at least one strategy")

    respect_order = bool(config and config.respect_order)
    dags = build_dags(region, respect_order=respect_order)
    features = region_features(region, model)
    bucket = feature_bucket(features)
    seed = resolve_seed(seed, default=0)

    if order is None and skip is None and store is not None:
        order, skip = store.rank(bucket, chosen)
    ordered = [s for s in (order or chosen) if s in chosen]
    ordered += [s for s in chosen if s not in ordered]
    skip_set = {s for s in (skip or ()) if s in chosen}
    active = [s for s in ordered if s not in skip_set]
    if not active:  # a skip set can never empty the race
        active, skip_set = [ordered[0]], set(ordered[1:])

    lb = region_lower_bound(region, model, dags)
    t0 = perf_counter()
    deadline_at = t0 + deadline_s if deadline_s is not None else None
    state = _RaceState(lb, deadline_at)

    outcomes = {name: StrategyOutcome(strategy=name) for name in ordered}
    for name in skip_set:
        outcomes[name].skipped = True

    with span("portfolio.race", tracer, strategies=",".join(active),
              skipped=",".join(sorted(skip_set)), bucket=bucket) as live:
        # Captured *inside* the race span: strategy threads re-parent to
        # it, keeping the whole race one stitched trace.
        ctx = current_context()
        threads = []
        for name in active:
            t = threading.Thread(
                target=_race_one,
                args=(name, outcomes[name], state, t0, region, model, config,
                      dags, seed, verify, tracer, ctx),
                name=f"portfolio-{name}",
                daemon=True,
            )
            threads.append(t)
            t.start()

        for t in threads:
            remaining = None
            if deadline_at is not None:
                remaining = max(0.0, deadline_at - perf_counter())
            t.join(remaining)
        state.stop.set()
        # Grace window: cooperative strategies notice the flag and land
        # their best-so-far; anything still running past it is abandoned
        # (daemon threads) and simply contributes no outcome.
        grace_at = perf_counter() + _CANCEL_GRACE_S
        for t in threads:
            t.join(max(0.0, grace_at - perf_counter()))

        # Deterministic winner: cheapest verified schedule, canonical
        # order breaking ties — never racing arrival order.
        candidates = [
            (outcomes[name].cost, PORTFOLIO_STRATEGIES.index(name)
             if name in PORTFOLIO_STRATEGIES else len(PORTFOLIO_STRATEGIES), name)
            for name in ordered
            if outcomes[name].cost is not None
        ]
        degraded = False
        if candidates:
            _, _, winner = min(candidates)
            win = outcomes[winner]
            schedule = win.schedule
            stats = win.stats
        else:
            winner = None
            with span("portfolio.fallback", tracer):
                schedule = greedy_schedule(region, model, dags=dags)
                verify_schedule(schedule, region, model, dags=dags)
            stats = None
            degraded = True

        cost = schedule.cost(model)
        wall_s = perf_counter() - t0
        serial = next((o for o in outcomes.values()
                       if o.strategy == "serial" and o.cost is not None), None)
        serial_cost = serial.cost if serial is not None \
            else serial_schedule(region, model).cost(model)
        lockstep_cost = lockstep_schedule(region, model).cost(model)
        proven = bool(
            cost <= lb + _EPS
            or (winner == "search" and stats is not None and stats.optimal))
        live.set(winner=winner or "fallback", cost=cost, proven=proven,
                 degraded=degraded)

    result = PortfolioResult(
        method="portfolio",
        schedule=schedule,
        cost=cost,
        serial_cost=serial_cost,
        lockstep_cost=lockstep_cost,
        stats=stats,
        wall_s=wall_s,
        degraded=degraded,
        winner=winner,
        outcomes=tuple(outcomes[name] for name in ordered),
        features=features,
        bucket=bucket,
        lower_bound=lb,
        proven=proven,
    )

    metrics.inc("portfolio_races_total")
    if degraded:
        metrics.inc("portfolio_fallbacks_total")
    if winner is not None:
        metrics.inc(f"strategy_wins_total_{winner}")
        ttb = outcomes[winner].time_to_best_s
        if ttb is not None:
            metrics.observe("strategy_time_to_best_seconds", ttb)
            metrics.observe(f"strategy_time_to_best_seconds_{winner}", ttb)
    if store is not None:
        store.record(bucket, winner,
                     [o.as_dict() for o in result.outcomes])
    return result
