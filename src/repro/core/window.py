"""Windowed induction: CSI at scale.

The exact search is exponential in region size; real interpreter regions
(whole handler sets, long traces) exceed any node budget.  Windowing keeps
the search exact *locally*: every thread's sequence is cut at the same
program-order boundaries, each window is induced independently, and the
window schedules are concatenated.

Correctness: a window boundary is a cut across all threads at op index
``k*w``; every dependence inside a thread points forward in program order,
so a concatenation of per-window schedules (each internally valid) is
globally valid — verified by the standard checker in tests.

Cost: windowing can only lose optimality at the seams (an op in window k
cannot share a slot with an op in window k+1), trading schedule quality
for search time in a controlled way.  The E3-style sweep in the tests
quantifies the trade.

Scale features (windows are embarrassingly parallel and highly repetitive):

- ``jobs`` fans the per-window searches out over a
  :class:`concurrent.futures.ProcessPoolExecutor` with ordered reassembly
  and per-window stats preserved; small inputs, single-window runs and
  pool-less environments fall back to the serial loop;
- ``cache`` consults a :class:`repro.core.cache.ScheduleCache` per window
  — traces of SPMD code repeat the same windows constantly, so warm runs
  skip the search entirely;
- ``tracer`` receives one ``window`` event per window plus a ``windowed``
  aggregate event.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass

from repro.core.cache import ScheduleCache, region_fingerprint
from repro.core.costmodel import CostModel
from repro.core.deprecation import warn_once
from repro.core.ops import Operation, Region, ThreadCode
from repro.core.result import ResultBase
from repro.core.schedule import Schedule, Slot
from repro.core.search import SearchConfig, SearchStats, branch_and_bound
from repro.core.serial import lockstep_schedule, serial_schedule
from repro.obs import (
    MemoryTracer,
    NULL_TRACER,
    StopWatch,
    Tracer,
    attach_context,
    current_context,
    replay_events,
    span,
)
from repro.obs.metrics import get_registry, observe_search_throughput

__all__ = ["WindowedResult", "windowed_induce"]

#: Structural floor for even considering the pool: total estimated search
#: work over the missed windows, scored as ops x threads per window (the
#: branching factor of a window search grows with both).  Below it the
#: fork/pickle overhead dwarfs the search itself; stay serial.
_MIN_PARALLEL_SCORE = 128

#: A process pool cannot beat the serial loop without at least this many
#: cores to spread the windows over.
_MIN_PARALLEL_CPUS = 2

#: Estimated remaining serial search time (first missed window's measured
#: wall times the number of remaining windows) below which pool startup
#: (~tens of ms per fork) is not worth paying.
_PARALLEL_MIN_EST_S = 0.25


@dataclass(frozen=True)
class WindowedResult(ResultBase):
    """Concatenated schedule plus per-window search statistics.

    Implements the unified result protocol: ``cost``/``serial_cost``/
    ``lockstep_cost`` are whole-region numbers, so speedups are directly
    comparable with one-shot :class:`repro.core.pipeline.InductionResult`.
    """

    schedule: Schedule
    window_size: int
    num_windows: int
    stats: tuple[SearchStats, ...]
    cache_hits: int = 0
    jobs_used: int = 1
    wall_s: float = 0.0
    cost: float = 0.0
    serial_cost: float = 0.0
    lockstep_cost: float = 0.0
    degraded: bool = False

    kind = "windowed"
    #: Windowed induction always runs the branch-and-bound per window.
    method = "search"

    @property
    def all_optimal(self) -> bool:
        """True if every window's search completed within budget."""
        return all(s.optimal for s in self.stats)

    @property
    def cache_hit(self) -> bool:
        """True when every window was served without a fresh search."""
        return self.num_windows > 0 and self.cache_hits >= self.num_windows

    def as_dict(self, include_schedule: bool = False) -> dict:
        out = super().as_dict(include_schedule=include_schedule)
        out.update(windows=self.num_windows, window_size=self.window_size,
                   cache_hits=self.cache_hits, jobs=self.jobs_used)
        return out


def _window_region(region: Region, start: int, size: int) -> tuple[Region, dict]:
    """Sub-region of ops [start, start+size) per thread, reindexed.

    Returns the window region and a map (thread, window_index) -> original
    index, used to translate slots back.
    """
    threads = []
    back: dict[tuple[int, int], int] = {}
    for tc in region.threads:
        ops = []
        for new_idx, op in enumerate(tc.ops[start:start + size]):
            ops.append(Operation(tc.thread, new_idx, op.opcode,
                                 op.reads, op.writes, op.imm))
            back[(tc.thread, new_idx)] = start + new_idx
        threads.append(ThreadCode(tc.thread, tuple(ops)))
    return Region(tuple(threads)), back


def _search_window(task: tuple[Region, CostModel, SearchConfig, dict | None]):
    """Process-pool entry point: induce one window region.

    Runs under the parent's span context (shipped as a plain dict so it
    pickles) and records its own ``window.search`` span into a
    :class:`MemoryTracer`; the recorded events and a nested counter
    snapshot ride back with the schedule so the parent can stitch one
    trace and merge per-worker counts.  ``perf_counter`` is
    CLOCK_MONOTONIC on Linux, so worker span timestamps are directly
    comparable with the parent's.
    """
    sub, model, config, ctx = task
    recorder = MemoryTracer()
    with attach_context(ctx):
        with span("window.search", recorder, ops=sub.num_ops,
                  pid=os.getpid()) as live:
            schedule, stats = branch_and_bound(sub, model, config)
            live.set(nodes=stats.nodes_expanded, cost=schedule.cost(model))
    snap = {"window": {"searches": 1, "nodes": stats.nodes_expanded,
                       "wall_s": stats.wall_s}}
    return schedule, stats, recorder.events, snap


def _resolve_jobs(jobs: int) -> int:
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0 (0 = all cores), got {jobs}")
    return jobs or (os.cpu_count() or 1)


def _run_windows_parallel(
    tasks: list[tuple[Region, CostModel, SearchConfig, dict | None]],
    jobs: int,
) -> list[tuple[Schedule, SearchStats, list, dict]] | None:
    """Fan the window searches out over a process pool, order preserved.

    Returns None when no pool can be created (restricted environments,
    missing OS primitives) so the caller degrades to the serial loop.
    """
    from concurrent.futures import ProcessPoolExecutor

    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
            return list(pool.map(_search_window, tasks))
    except (OSError, PermissionError, ImportError, RuntimeError):
        return None


def windowed_induce(
    region: Region,
    model: CostModel,
    window_size: int = 8,
    config: SearchConfig | None = None,
    jobs: int = 1,
    cache: ScheduleCache | None = None,
    tracer: Tracer | None = None,
) -> WindowedResult:
    """Deprecated positional entry point; use :func:`repro.api.induce`.

    Behaves exactly like the original ``windowed_induce`` and warns once
    per process.  New code should build a :class:`repro.api.InductionRequest`
    with ``window > 0`` and call :func:`repro.api.induce`.
    """
    warn_once(
        "core.windowed_induce",
        "repro.core.windowed_induce(region, model, ...) is deprecated; build "
        "a repro.api.InductionRequest and call repro.api.induce(request)",
    )
    return _windowed_induce_impl(region, model, window_size=window_size,
                                 config=config, jobs=jobs, cache=cache,
                                 tracer=tracer)


def _windowed_induce_impl(
    region: Region,
    model: CostModel,
    window_size: int = 8,
    config: SearchConfig | None = None,
    jobs: int = 1,
    cache: ScheduleCache | None = None,
    tracer: Tracer | None = None,
    vn: str = "off",
) -> WindowedResult:
    """Induce ``region`` window by window; returns the stitched schedule.

    Each window is scheduled by the full branch-and-bound (with the given
    per-window ``config``); dependences are recomputed inside each window,
    and since windows respect program order, cross-window dependences are
    honoured by construction.

    ``jobs > 1`` (or 0 for all cores) searches cache-missed windows in a
    process pool; the stitched schedule is identical to the serial path's
    because every window search is deterministic and reassembly is ordered.

    ``vn`` runs the value-numbering pre-pass over the whole region before
    it is cut into windows, so per-window fingerprints (and the per-window
    cache) see the canonical form.  Per-window stats are *not* stamped
    with region-level vn counters — those cache entries are shared across
    regions; vn telemetry rides the ``vn.prepass`` span and metrics.
    """
    tracer = tracer or NULL_TRACER
    with span("windowed_induce", tracer, ops=region.num_ops,
              threads=region.num_threads, window_size=window_size) as live:
        if vn != "off":
            from repro.core.vn import vn_prepass
            region, _vnstats = vn_prepass(region, model, vn, tracer)
        result = _windowed_body(region, model, window_size=window_size,
                                config=config, jobs=jobs, cache=cache,
                                tracer=tracer)
        live.set(cost=result.cost, windows=result.num_windows,
                 cache_hits=result.cache_hits, jobs=result.jobs_used)
    return result


def _windowed_body(
    region: Region,
    model: CostModel,
    window_size: int = 8,
    config: SearchConfig | None = None,
    jobs: int = 1,
    cache: ScheduleCache | None = None,
    tracer: Tracer | None = None,
) -> WindowedResult:
    # The real work; runs under _windowed_induce_impl's "windowed_induce"
    # span so per-window "window.search" spans (local or worker-side) hang
    # off one parent.
    if window_size < 1:
        raise ValueError(f"window size must be positive, got {window_size}")
    config = config or SearchConfig()
    tracer = tracer or NULL_TRACER
    jobs = _resolve_jobs(jobs)
    watch = StopWatch().start()

    longest = max((len(tc) for tc in region.threads), default=0)
    windows: list[tuple[int, Region, dict]] = []
    for start in range(0, longest, window_size):
        sub, back = _window_region(region, start, window_size)
        if sub.num_ops:
            windows.append((start, sub, back))

    # Pass 1: cache lookups (always in the parent — the cache is not shared
    # with workers).  ``results`` is indexed by window position.
    results: list[tuple[Schedule, SearchStats] | None] = [None] * len(windows)
    fingerprints: list[str | None] = [None] * len(windows)
    cache_hits = 0
    if cache is not None:
        for w, (_start, sub, _back) in enumerate(windows):
            fingerprints[w] = region_fingerprint(sub, model, config)
            hit = cache.get(fingerprints[w])
            if hit is not None and hit[1] is not None:
                results[w] = (hit[0], hit[1])
                cache_hits += 1

    # Pass 2: search the misses — deduplicated by fingerprint (SPMD traces
    # repeat windows constantly, so equal windows are searched once per run)
    # and fanned out over a process pool when it pays off.
    miss_idx = [w for w, r in enumerate(results) if r is None]
    unique_idx: list[int] = []
    duplicate_of: dict[int, int] = {}
    first_with: dict[str, int] = {}
    for w in miss_idx:
        fp = fingerprints[w]
        if fp is not None and fp in first_with:
            duplicate_of[w] = first_with[fp]
        else:
            if fp is not None:
                first_with[fp] = w
            unique_idx.append(w)

    ctx = current_context()
    tasks = [(windows[w][1], model, config, ctx) for w in unique_idx]
    jobs_used = 1
    if (jobs > 1 and len(tasks) > 1
            and (os.cpu_count() or 1) >= _MIN_PARALLEL_CPUS
            and sum(t[0].num_ops * t[0].num_threads for t in tasks)
                >= _MIN_PARALLEL_SCORE):
        # Adaptive fan-out: search the first missed window serially — it is
        # work we must do anyway and it prices a window search on this
        # machine for this config.  Only when the estimated remaining
        # serial time clears the pool's startup overhead does the pool get
        # the rest; otherwise the serial loop below finishes the job and
        # small runs never pay fork/pickle for nothing (E13 regression:
        # jobs=4 was 0.8x serial on sub-second workloads).
        results[unique_idx[0]] = _search_window(tasks[0])
        first_wall = results[unique_idx[0]][1].wall_s
        if first_wall * (len(tasks) - 1) >= _PARALLEL_MIN_EST_S:
            parallel = _run_windows_parallel(tasks[1:], jobs)
            if parallel is not None:
                jobs_used = min(jobs, len(tasks) - 1)
                for w, outcome in zip(unique_idx[1:], parallel):
                    results[w] = outcome
    for pos, w in enumerate(unique_idx):
        if results[w] is None:
            results[w] = _search_window(tasks[pos])
    # Freshly searched windows come back as 4-tuples carrying the worker's
    # recorded spans and a nested counter snapshot: replay the spans into
    # the parent sink (one stitched trace) and merge the counts, then
    # normalize to the (schedule, stats) shape the passes below expect.
    metrics = get_registry()
    for w in unique_idx:
        sched, st, events, snap = results[w]
        replay_events(events, tracer)
        metrics.counters.merge(snap)
        metrics.observe("window_search_seconds", st.wall_s)
        observe_search_throughput(metrics, st)
        results[w] = (sched, st)
    if cache is not None:
        for w in unique_idx:
            sched, st = results[w]
            cache.put(fingerprints[w], sched, st)
    for w, source in duplicate_of.items():
        sched, st = results[source]
        results[w] = (sched, dataclasses.replace(st))
        cache_hits += 1

    # Pass 3: ordered reassembly through each window's back-map.  Windows
    # resolved without a fresh search (cache or in-run duplicate) are "hit".
    miss_set = set(unique_idx)
    slots: list[Slot] = []
    stats: list[SearchStats] = []
    for w, (start, sub, back) in enumerate(windows):
        sched, st = results[w]
        stats.append(st)
        for slot in sched:
            slots.append(Slot(slot.opclass,
                              {t: back[(t, i)] for t, i in slot.picks.items()}))
        if tracer.enabled:
            tracer.emit(
                "window",
                index=w,
                start=start,
                ops=sub.num_ops,
                slots=len(sched),
                cost=sched.cost(model),
                engine=st.engine,
                nodes_per_s=round(st.nodes_per_second, 1),
                nodes=st.nodes_expanded,
                pruned_bound=st.pruned_by_bound,
                pruned_memo=st.pruned_by_memo,
                incumbent_updates=st.incumbent_updates,
                optimal=st.optimal,
                budget_exhausted=st.budget_exhausted,
                wall_s=st.wall_s,
                cache="off" if cache is None else
                      ("miss" if w in miss_set else "hit"),
            )

    schedule = Schedule(tuple(slots))
    wall_s = watch.stop()
    result = WindowedResult(
        schedule=schedule,
        window_size=window_size,
        num_windows=len(windows),
        stats=tuple(stats),
        cache_hits=cache_hits,
        jobs_used=jobs_used,
        wall_s=wall_s,
        cost=schedule.cost(model),
        serial_cost=serial_schedule(region, model).cost(model),
        lockstep_cost=lockstep_schedule(region, model).cost(model),
    )
    if tracer.enabled:
        tracer.emit(
            "windowed",
            windows=result.num_windows,
            window_size=window_size,
            jobs=jobs_used,
            ops=region.num_ops,
            threads=region.num_threads,
            cost=result.cost,
            nodes=result.total_nodes,
            cache_hits=cache_hits,
            all_optimal=result.all_optimal,
            budget_exhausted=sum(1 for s in stats if s.budget_exhausted),
            wall_s=wall_s,
        )
    return result
