"""Windowed induction: CSI at scale.

The exact search is exponential in region size; real interpreter regions
(whole handler sets, long traces) exceed any node budget.  Windowing keeps
the search exact *locally*: every thread's sequence is cut at the same
program-order boundaries, each window is induced independently, and the
window schedules are concatenated.

Correctness: a window boundary is a cut across all threads at op index
``k*w``; every dependence inside a thread points forward in program order,
so a concatenation of per-window schedules (each internally valid) is
globally valid — verified by the standard checker in tests.

Cost: windowing can only lose optimality at the seams (an op in window k
cannot share a slot with an op in window k+1), trading schedule quality
for search time in a controlled way.  The E3-style sweep in the tests
quantifies the trade.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.costmodel import CostModel
from repro.core.ops import Operation, Region, ThreadCode
from repro.core.schedule import Schedule, Slot
from repro.core.search import SearchConfig, SearchStats, branch_and_bound

__all__ = ["WindowedResult", "windowed_induce"]


@dataclass(frozen=True)
class WindowedResult:
    """Concatenated schedule plus per-window search statistics."""

    schedule: Schedule
    window_size: int
    num_windows: int
    stats: tuple[SearchStats, ...]

    @property
    def total_nodes(self) -> int:
        return sum(s.nodes_expanded for s in self.stats)

    @property
    def all_optimal(self) -> bool:
        """True if every window's search completed within budget."""
        return all(s.optimal for s in self.stats)


def _window_region(region: Region, start: int, size: int) -> tuple[Region, dict]:
    """Sub-region of ops [start, start+size) per thread, reindexed.

    Returns the window region and a map (thread, window_index) -> original
    index, used to translate slots back.
    """
    threads = []
    back: dict[tuple[int, int], int] = {}
    for tc in region.threads:
        ops = []
        for new_idx, op in enumerate(tc.ops[start:start + size]):
            ops.append(Operation(tc.thread, new_idx, op.opcode,
                                 op.reads, op.writes, op.imm))
            back[(tc.thread, new_idx)] = start + new_idx
        threads.append(ThreadCode(tc.thread, tuple(ops)))
    return Region(tuple(threads)), back


def windowed_induce(
    region: Region,
    model: CostModel,
    window_size: int = 8,
    config: SearchConfig | None = None,
) -> WindowedResult:
    """Induce ``region`` window by window; returns the stitched schedule.

    Each window is scheduled by the full branch-and-bound (with the given
    per-window ``config``); dependences are recomputed inside each window,
    and since windows respect program order, cross-window dependences are
    honoured by construction.
    """
    if window_size < 1:
        raise ValueError(f"window size must be positive, got {window_size}")
    config = config or SearchConfig()
    longest = max((len(tc) for tc in region.threads), default=0)
    slots: list[Slot] = []
    stats: list[SearchStats] = []
    num_windows = 0
    for start in range(0, longest, window_size):
        sub, back = _window_region(region, start, window_size)
        if sub.num_ops == 0:
            continue
        num_windows += 1
        sched, st = branch_and_bound(sub, model, config)
        stats.append(st)
        for slot in sched:
            slots.append(Slot(slot.opclass,
                              {t: back[(t, i)] for t, i in slot.picks.items()}))
    return WindowedResult(
        schedule=Schedule(tuple(slots)),
        window_size=window_size,
        num_windows=num_windows,
        stats=tuple(stats),
    )
