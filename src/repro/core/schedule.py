"""Schedules: the output of CSI.

A :class:`Schedule` is an ordered list of :class:`Slot`\\ s.  Each slot
carries the opcode class executed in that SIMD instruction issue and a map
``thread -> operation index`` of the ops that share ("are induced into") the
slot.  Slots execute sequentially; within a slot all participating PEs run
the same handler simultaneously under an enable mask.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Iterator, Mapping

from repro.core.costmodel import CostModel
from repro.core.ops import Region

__all__ = ["Schedule", "Slot"]


@dataclass(frozen=True)
class Slot:
    """One SIMD instruction issue shared by one or more threads."""

    opclass: str
    picks: Mapping[int, int]

    def __post_init__(self) -> None:
        if not self.picks:
            raise ValueError("slot with no participating threads")
        object.__setattr__(self, "picks", MappingProxyType(dict(self.picks)))

    def __getstate__(self) -> dict:
        # MappingProxyType is not picklable; schedules must survive the trip
        # back from windowed-induction worker processes.
        return {"opclass": self.opclass, "picks": dict(self.picks)}

    def __setstate__(self, state: dict) -> None:
        object.__setattr__(self, "opclass", state["opclass"])
        object.__setattr__(self, "picks", MappingProxyType(dict(state["picks"])))

    @property
    def threads(self) -> frozenset[int]:
        return frozenset(self.picks)

    @property
    def width(self) -> int:
        """Number of threads sharing the slot."""
        return len(self.picks)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(sorted(self.picks.items()))

    def render(self) -> str:
        body = ", ".join(f"T{t}:{i}" for t, i in self)
        return f"[{self.opclass}  {body}]"


@dataclass(frozen=True)
class Schedule:
    """An ordered sequence of slots covering a region."""

    slots: tuple[Slot, ...]

    def __len__(self) -> int:
        return len(self.slots)

    def __iter__(self) -> Iterator[Slot]:
        return iter(self.slots)

    def __getitem__(self, i: int) -> Slot:
        return self.slots[i]

    def cost(self, model: CostModel) -> float:
        """Total execution time under ``model`` (sum of slot costs)."""
        return sum(model.slot_cost(slot.opclass) for slot in self.slots)

    def num_ops(self) -> int:
        return sum(slot.width for slot in self.slots)

    def ops_of_thread(self, thread: int) -> list[int]:
        """Operation indices of ``thread`` in execution order."""
        return [slot.picks[thread] for slot in self.slots if thread in slot.picks]

    def utilization(self, num_threads: int) -> float:
        """Mean fraction of threads active per slot (1.0 = perfect sharing)."""
        if not self.slots:
            return 0.0
        return sum(slot.width for slot in self.slots) / (len(self.slots) * num_threads)

    def sharing_factor(self) -> float:
        """Mean number of threads per slot (ops executed / slots issued)."""
        if not self.slots:
            return 0.0
        return self.num_ops() / len(self.slots)

    def render(self, region: Region | None = None) -> str:
        """Multi-line listing; with ``region`` the merged ops are spelled out."""
        lines: list[str] = []
        for k, slot in enumerate(self.slots):
            if region is None:
                lines.append(f"{k:4d}: {slot.render()}")
            else:
                parts = [
                    f"T{t}<{region[t].ops[i].render()}>" for t, i in slot
                ]
                lines.append(f"{k:4d}: {slot.opclass:<8s} {'  '.join(parts)}")
        return "\n".join(lines)
