"""Intermediate representation for CSI: operations, threads and regions.

The unit CSI operates on is a *region*: one straight-line operation sequence
per MIMD thread (the paper works at basic-block scope).  Each operation names
the virtual registers / memory symbols it reads and writes; dependences are
derived from those sets by :mod:`repro.core.dag`.

A tiny textual syntax is provided for tests, examples and benchmark
workloads::

    region = parse_region('''
        thread 0:
            t0 = ld   x
            t1 = mul  t0 t0
            st  y  t1
        thread 1:
            u0 = ld   x
            u1 = add  u0 #1
            st  y  u1
    ''')

Each line is ``dst = opcode src...`` or ``opcode src...`` (no result), with
``#value`` denoting an immediate operand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

__all__ = ["Operation", "Region", "ThreadCode", "parse_region"]


@dataclass(frozen=True)
class Operation:
    """One MIMD operation inside a thread's sequence.

    ``thread`` and ``index`` identify the operation's home slot in the
    region; ``reads``/``writes`` are symbol tuples used for dependence
    analysis; ``imm`` is an optional immediate whose equality can be required
    for merging (hardware-dependent, see
    :attr:`repro.core.costmodel.CostModel.require_equal_imm`).
    """

    thread: int
    index: int
    opcode: str
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    imm: int | float | None = None

    def __post_init__(self) -> None:
        if self.thread < 0:
            raise ValueError(f"negative thread id {self.thread}")
        if self.index < 0:
            raise ValueError(f"negative operation index {self.index}")
        if not self.opcode:
            raise ValueError("empty opcode")

    @property
    def key(self) -> tuple[int, int]:
        """(thread, index) pair uniquely identifying this op in its region."""
        return (self.thread, self.index)

    def render(self) -> str:
        """Human-readable one-line form (inverse of the parser, roughly)."""
        parts = [self.opcode]
        parts.extend(self.reads)
        if self.imm is not None:
            parts.append(f"#{self.imm}")
        rhs = " ".join(parts)
        if self.writes:
            return f"{','.join(self.writes)} = {rhs}"
        return rhs


@dataclass(frozen=True)
class ThreadCode:
    """The straight-line operation sequence of one thread."""

    thread: int
    ops: tuple[Operation, ...]

    def __post_init__(self) -> None:
        for i, op in enumerate(self.ops):
            if op.thread != self.thread:
                raise ValueError(
                    f"operation {i} belongs to thread {op.thread}, not {self.thread}")
            if op.index != i:
                raise ValueError(f"operation at position {i} has index {op.index}")

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.ops)

    @staticmethod
    def from_specs(
        thread: int,
        specs: Iterable[tuple[str, Sequence[str], Sequence[str]] | Operation],
    ) -> "ThreadCode":
        """Build from ``(opcode, reads, writes)`` triples or Operations.

        Indices are assigned by position; Operation inputs are re-indexed.
        """
        ops: list[Operation] = []
        for i, spec in enumerate(specs):
            if isinstance(spec, Operation):
                ops.append(Operation(thread, i, spec.opcode, spec.reads, spec.writes, spec.imm))
            else:
                opcode, reads, writes = spec
                ops.append(Operation(thread, i, opcode, tuple(reads), tuple(writes)))
        return ThreadCode(thread, tuple(ops))


@dataclass(frozen=True)
class Region:
    """A multi-thread code region: the input to CSI."""

    threads: tuple[ThreadCode, ...]

    def __post_init__(self) -> None:
        for t, tc in enumerate(self.threads):
            if tc.thread != t:
                raise ValueError(f"thread at position {t} has id {tc.thread}")

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    @property
    def num_ops(self) -> int:
        return sum(len(tc) for tc in self.threads)

    def __iter__(self) -> Iterator[ThreadCode]:
        return iter(self.threads)

    def __getitem__(self, thread: int) -> ThreadCode:
        return self.threads[thread]

    def all_ops(self) -> Iterator[Operation]:
        for tc in self.threads:
            yield from tc.ops

    def opcodes(self) -> set[str]:
        return {op.opcode for op in self.all_ops()}

    @staticmethod
    def from_sequences(seqs: Iterable[Iterable[tuple[str, Sequence[str], Sequence[str]]]]) -> "Region":
        """Build a region from per-thread ``(opcode, reads, writes)`` triples."""
        threads = tuple(
            ThreadCode.from_specs(t, list(specs)) for t, specs in enumerate(seqs)
        )
        return Region(threads)

    def render(self) -> str:
        lines: list[str] = []
        for tc in self.threads:
            lines.append(f"thread {tc.thread}:")
            for op in tc.ops:
                lines.append(f"    {op.render()}")
        return "\n".join(lines)


class RegionParseError(ValueError):
    """Raised when :func:`parse_region` is given malformed text."""


def _parse_imm(token: str) -> int | float:
    body = token[1:]
    try:
        return int(body)
    except ValueError:
        try:
            return float(body)
        except ValueError as exc:
            raise RegionParseError(f"bad immediate {token!r}") from exc


def parse_region(text: str) -> Region:
    """Parse the textual region syntax documented in the module docstring.

    Thread headers must be ``thread N:`` with consecutive ``N`` starting at 0.
    """
    threads: list[list[Operation]] = []
    current: list[Operation] | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith("thread"):
            head = line.rstrip(":").split()
            if len(head) != 2:
                raise RegionParseError(f"line {lineno}: bad thread header {raw!r}")
            try:
                tid = int(head[1])
            except ValueError as exc:
                raise RegionParseError(f"line {lineno}: bad thread id {head[1]!r}") from exc
            if tid != len(threads):
                raise RegionParseError(
                    f"line {lineno}: expected thread {len(threads)}, got {tid}")
            current = []
            threads.append(current)
            continue
        if current is None:
            raise RegionParseError(f"line {lineno}: operation before any thread header")
        writes: tuple[str, ...] = ()
        rhs = line
        if "=" in line:
            lhs, rhs = (part.strip() for part in line.split("=", 1))
            writes = tuple(s.strip() for s in lhs.split(",") if s.strip())
            if not writes:
                raise RegionParseError(f"line {lineno}: empty destination list")
        tokens = rhs.split()
        if not tokens:
            raise RegionParseError(f"line {lineno}: empty operation")
        opcode = tokens[0]
        reads: list[str] = []
        imm: int | float | None = None
        for tok in tokens[1:]:
            if tok.startswith("#"):
                if imm is not None:
                    raise RegionParseError(f"line {lineno}: multiple immediates")
                imm = _parse_imm(tok)
            else:
                reads.append(tok)
        tid = len(threads) - 1
        current.append(Operation(tid, len(current), opcode, tuple(reads), writes, imm))
    if not threads:
        raise RegionParseError("no threads in region text")
    return Region(tuple(
        ThreadCode(t, tuple(ops)) for t, ops in enumerate(threads)
    ))
