"""Cross-thread value-numbering pre-pass.

CSI's speedup is bounded by how many slots the scheduler can merge, and
merging buckets ops purely by :meth:`repro.core.costmodel.CostModel.merge_key`
— so two threads computing the same value through *differently spelled*
ops (``mul x #2`` vs ``shl x #1``, ``add a b`` vs ``add b a``, a redundant
``add t #0`` copy) land in different buckets and never share a slot.  This
pass runs before the search and rewrites every thread into a canonical op
form so structurally-identical computations become mergeable:

- **canonical operand order** — commutative ops' reads are sorted;
- **canonical op form** — ``mul x #2^k`` becomes ``shl x #k``, the
  ``add/sub/or/shl/shr x #0`` / ``mul x #1`` identity family becomes
  ``mov x``, integral float immediates fold to int;
- **constant-pool hoist** — an op whose value is semantically constant 0
  or 1 under every probe assignment (``sub x x``, ``mul x #0``, masked
  ``and`` chains) becomes the constant-pool lookup ``lds #c``, the
  factored subsequence form the paper's §3.1.4 uses for shared constants.

The pass is *never worse* by construction:

1. every rewrite keeps the op's writes and only ever shrinks its reads,
   so the rewritten dependence DAG is a subgraph of the original and any
   valid original schedule order remains valid;
2. an opcode-changing rewrite must not raise the op's slot cost
   (``slot_cost(new class) <= slot_cost(old class)``);
3. rewrites that change an op's merge key are all-or-nothing per original
   merge-key group: they apply only if every op in the group lands on one
   common new key, otherwise the key-changing members revert to the
   key-preserving strip (operand reorder + immediate canonicalization).

Together these give a slot-by-slot mapping from any schedule of the
original region to a valid schedule of the rewritten region of equal or
lower cost — so the search's optimum can only improve.

Semantic preservation rests on :mod:`repro.core.canon`: every candidate
whose shape changed beyond a commutative reorder is value-checked against
the original op in context under the K probe assignments (probabilistic
identity testing over Z_p, failure odds ~2^-244), and the differential
fuzz oracle re-checks whole rewritten regions with extra
``$REPRO_SEED``-derived assignments on top.  Commutative reorders are
applied on the authority of :data:`repro.core.canon.COMMUTATIVE` alone —
the deliberate hook the mutation-smoke test uses to prove the oracle
catches a wrong-canonical-order bug.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import canon
from repro.core.canon import (
    NUM_ASSIGNMENTS,
    PURE_OPCODES,
    ThreadEvaluator,
    canonical_imm,
    cross_thread_candidates,
)
from repro.core.costmodel import CostModel
from repro.core.ops import Operation, Region, ThreadCode
from repro.obs import NULL_TRACER, StopWatch, Tracer, span
from repro.obs.metrics import get_registry

__all__ = ["VN_MODES", "VNStats", "rewrite_region", "serial_issue_cost",
           "vn_prepass"]

#: Accepted values of ``InductionRequest.vn``: ``off`` (no pass — the
#: default, bit-identical to pre-vn behavior), ``on`` (always rewrite),
#: ``auto`` (rewrite, keep only if it lowered serial issue cost or raised
#: cross-thread merge-key candidates).
VN_MODES = ("off", "on", "auto")

#: Opcodes the constant-pool hoist never produces a rewrite *for* —
#: div/mod keep their (potentially trapping) spelled form untouched.
_NO_CONST_HOIST = frozenset({"div", "mod", "lds"})


def _shape(op: Operation) -> tuple:
    """Identity of an op's rewritable surface (repr distinguishes 2/2.0)."""
    return (op.opcode, op.reads, repr(op.imm))


def _with(op: Operation, opcode: str | None = None,
          reads: tuple[str, ...] | None = None,
          imm: int | float | None = None, *, drop_imm: bool = False) -> Operation:
    return Operation(
        op.thread, op.index,
        op.opcode if opcode is None else opcode,
        op.reads if reads is None else reads,
        op.writes,
        None if drop_imm else (op.imm if imm is None else imm))


def _strip(op: Operation) -> Operation:
    """Key-preserving canonicalization: reorder + immediate folding.

    Safe fallback for any op a stronger rewrite was refused on: sorting a
    commutative op's reads and folding ``2.0`` to ``2`` never change the
    merge key (``(cls, 2) == (cls, 2.0)`` under Python numeric equality).
    ``canon.COMMUTATIVE`` is consulted late so tests can monkeypatch it.
    """
    reads = op.reads
    if op.opcode in canon.COMMUTATIVE and len(reads) > 1:
        reads = tuple(sorted(reads))
    return _with(op, reads=reads, imm=canonical_imm(op.imm))


def _rule_form(op: Operation) -> Operation:
    """Fixpoint of the context-free canonical-form rules on ``op``.

    Rules only fire on pure ops that produce a result; each output is
    itself in rule normal form, which is what makes the whole pass
    idempotent.  Cost guarding happens in the caller — this is shape only.
    """
    if not op.writes or op.opcode not in PURE_OPCODES:
        return op
    cur = _strip(op)
    for _ in range(4):  # mul#2.0 -> mul#2 -> shl#1 is the longest chain
        imm = cur.imm
        if cur.opcode in ("add", "sub", "or", "shl", "shr") and imm == 0 \
                and len(cur.reads) == 1:
            nxt = _with(cur, opcode="mov", drop_imm=True)
        elif cur.opcode == "mul" and imm == 1 and len(cur.reads) == 1:
            nxt = _with(cur, opcode="mov", drop_imm=True)
        elif cur.opcode == "mul" and isinstance(imm, int) \
                and not isinstance(imm, bool) and imm >= 2 \
                and imm & (imm - 1) == 0 and len(cur.reads) == 1:
            nxt = _with(cur, opcode="shl", imm=imm.bit_length() - 1)
        else:
            break
        cur = _strip(nxt)
    return cur


def _guarded(op: Operation, candidate: Operation, model: CostModel) -> Operation:
    """``candidate`` if it does not raise the op's slot cost, else strip."""
    old_cls = model.opcode_class(op.opcode)
    new_cls = model.opcode_class(candidate.opcode)
    if new_cls != old_cls and model.slot_cost(new_cls) > model.slot_cost(old_cls):
        return _strip(op)
    return candidate


def serial_issue_cost(region: Region, model: CostModel) -> float:
    """Cost of issuing every op in its own slot (the serial baseline)."""
    return sum(model.slot_cost(model.opcode_class(op.opcode))
               for op in region.all_ops())


def _merge_key_candidates(region: Region, model: CostModel) -> int:
    """Ops whose merge key is shared with an op of another thread.

    The scheduler-facing redundancy measure (contrast with the *semantic*
    :func:`repro.core.canon.cross_thread_candidates`): these ops can
    actually share a slot as spelled.
    """
    threads_by_key: dict[tuple, set[int]] = {}
    for op in region.all_ops():
        threads_by_key.setdefault(model.merge_key(op), set()).add(op.thread)
    return sum(1 for op in region.all_ops()
               if len(threads_by_key[model.merge_key(op)]) > 1)


@dataclass
class VNStats:
    """What one :func:`vn_prepass` run did (attached to search stats)."""

    mode: str
    applied: bool
    rewrites: int
    #: Ops whose *semantic* fingerprint collides across threads — the
    #: redundancy the pass discovered (invariant under its own rewrites).
    merged_candidates: int
    mergekey_candidates_before: int
    mergekey_candidates_after: int
    serial_cost_before: float
    serial_cost_after: float
    wall_s: float = 0.0


def rewrite_region(region: Region, model: CostModel) -> tuple[Region, int]:
    """Canonicalize ``region``; returns (rewritten region, rewrite count).

    Pure mechanics — mode selection, tracing and metrics live in
    :func:`vn_prepass`.  See the module docstring for the soundness and
    never-worse arguments each phase below implements.
    """
    originals = [list(tc.ops) for tc in region.threads]
    candidates = [[_guarded(op, _rule_form(op), model) for op in ops]
                  for ops in originals]

    # Value-check every candidate whose shape changed beyond the strip,
    # in context, under the K probe assignments; record original values
    # for the constant-pool hoist.  The walk steps *original* ops, which
    # is sound because only value-preserving candidates survive it.
    rejected: set[tuple[int, int]] = set()
    values: dict[tuple[int, int], list[int]] = {
        op.key: [] for ops in originals for op in ops}
    for index in range(NUM_ASSIGNMENTS):
        for t, ops in enumerate(originals):
            ev = ThreadEvaluator(index)
            for i, op in enumerate(ops):
                cand = candidates[t][i]
                if _shape(cand) != _shape(_strip(op)) \
                        and ev.value_of(cand) != ev.value_of(op):
                    rejected.add(op.key)
                values[op.key].append(ev.step(op))

    for t, ops in enumerate(originals):
        for i, op in enumerate(ops):
            if op.key in rejected:
                candidates[t][i] = _strip(op)
                continue
            # Constant-pool hoist: semantically constant 0/1 results
            # become the factored `lds #c` lookup (cost-guarded, so e.g.
            # maspar's cheap `sub x x` stays put while `mul x #0` hoists).
            vals = values[op.key]
            if op.writes and op.opcode in PURE_OPCODES \
                    and op.opcode not in _NO_CONST_HOIST \
                    and vals and vals[0] in (0, 1) \
                    and all(v == vals[0] for v in vals):
                hoist = _with(op, opcode="lds", reads=(), imm=vals[0])
                candidates[t][i] = _guarded(op, hoist, model)

    # All-or-nothing per merge-key group: a key-changing rewrite survives
    # only if the whole group lands on one common new key.
    groups: dict[tuple, list[tuple[int, int]]] = {}
    for t, ops in enumerate(originals):
        for i, op in enumerate(ops):
            groups.setdefault(model.merge_key(op), []).append((t, i))
    for key, members in groups.items():
        new_keys = {model.merge_key(candidates[t][i]) for t, i in members}
        if len(new_keys) > 1:
            for t, i in members:
                if model.merge_key(candidates[t][i]) != key:
                    candidates[t][i] = _strip(originals[t][i])

    rewrites = sum(
        1 for t, ops in enumerate(originals)
        for i, op in enumerate(ops) if _shape(candidates[t][i]) != _shape(op))
    if not rewrites:
        return region, 0
    rewritten = Region(tuple(
        ThreadCode(t, tuple(ops)) for t, ops in enumerate(candidates)))
    return rewritten, rewrites


def vn_prepass(
    region: Region,
    model: CostModel,
    mode: str = "on",
    tracer: Tracer | None = None,
) -> tuple[Region, VNStats | None]:
    """Run the value-numbering pre-pass per ``mode``.

    Returns the region to schedule plus a :class:`VNStats` (``None`` iff
    ``mode="off"``, which is a guaranteed no-op).  ``auto`` keeps the
    rewrite only when it strictly lowered serial issue cost or strictly
    raised the cross-thread merge-key candidate count — otherwise the
    original region is returned and the stats record ``applied=False``.
    Emits a ``vn.prepass`` span and the ``vn_*`` metrics either way.
    """
    if mode not in VN_MODES:
        raise ValueError(f"unknown vn mode {mode!r}; expected one of {VN_MODES}")
    if mode == "off":
        return region, None
    tracer = tracer or NULL_TRACER
    metrics = get_registry()
    watch = StopWatch().start()
    with span("vn.prepass", tracer, mode=mode, ops=region.num_ops) as live:
        mk_before = _merge_key_candidates(region, model)
        serial_before = serial_issue_cost(region, model)
        rewritten, rewrites = rewrite_region(region, model)
        mk_after = _merge_key_candidates(rewritten, model)
        serial_after = serial_issue_cost(rewritten, model)
        applied = rewrites > 0 and (
            mode == "on"
            or serial_after < serial_before - 1e-9
            or mk_after > mk_before)
        if not applied:
            rewritten, mk_after, serial_after = region, mk_before, serial_before
        merged = cross_thread_candidates(rewritten)
        stats = VNStats(
            mode=mode,
            applied=applied,
            rewrites=rewrites if applied else 0,
            merged_candidates=merged,
            mergekey_candidates_before=mk_before,
            mergekey_candidates_after=mk_after,
            serial_cost_before=serial_before,
            serial_cost_after=serial_after,
        )
        stats.wall_s = watch.stop()
        live.set(applied=applied, rewrites=stats.rewrites,
                 merged_candidates=merged, merge_keys_before=mk_before,
                 merge_keys_after=mk_after)
    metrics.inc("vn_prepass_total")
    if stats.rewrites:
        metrics.inc("vn_rewrites_total", stats.rewrites)
    metrics.observe("vn_prepass_seconds", stats.wall_s)
    metrics.observe("vn_merged_candidates", float(merged))
    return rewritten, stats
