"""Command-line interface: ``python -m repro <command>``.

Mirrors the user-facing surface of the 1992 prototype:

- ``compile``  — MIMDC source -> assembly listing or binary object file
  (the ``mimda`` step of §3.1.4);
- ``run``      — execute MIMDC source or an object file on the simulated
  MasPar through the MIMD-on-SIMD interpreter;
- ``induce``   — run CSI (or a baseline) on a textual region file, with
  optional windowing (``--window``), parallel window fan-out (``--jobs``),
  a persistent content-addressed schedule cache (``--cache-dir``) and a
  JSONL search trace (``--trace``);
- ``stats``    — summarize a ``--trace`` file (nodes, prunes, cache hit
  rate, wall time);
- ``select``   — the "master shell script" step of §4.3: compute expected
  op counts, consult the machine database, and report where the program
  should run.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main"]


def _cmd_compile(args) -> int:
    from repro.isa import disassemble, encode_object
    from repro.lang import compile_mimdc

    source = open(args.source).read()
    unit = compile_mimdc(source, optimize=not args.no_optimize)
    if args.output:
        with open(args.output, "wb") as fh:
            fh.write(encode_object(unit.program))
        print(f"wrote {args.output}: {len(unit.program)} instructions, "
              f"{len(unit.program.constants)} constants")
    if args.asm or not args.output:
        print(disassemble(unit.program), end="")
    if args.counts:
        print("; expected execution counts (for target selection):")
        for op, count in sorted(unit.counts.items()):
            print(f";   {op:8s} {count:12.2f}")
    return 0


def _load_program(path: str, optimize: bool = True):
    from repro.interp.state import MemoryLayout
    from repro.isa import decode_object
    from repro.lang import compile_mimdc

    if path.endswith(".mobj"):
        program = decode_object(open(path, "rb").read())
        return program, MemoryLayout(), {}
    unit = compile_mimdc(open(path).read(), optimize=optimize)
    return unit.program, unit.layout, unit.globals_map


def _cmd_run(args) -> int:
    from repro.interp import FrequencyBias, InterpreterConfig, run_program

    program, layout, globals_map = _load_program(args.source)
    config = InterpreterConfig(
        factored=not args.no_factoring,
        subinterpreters=not args.no_subinterpreters,
        bias=FrequencyBias(period=args.bias) if args.bias else None,
    )
    interp, stats = run_program(program, args.pes, config=config, layout=layout)
    print(f"ran on {args.pes} PEs: {stats.cycles:.1f} SIMD cycles, "
          f"{stats.cycle_count} interpreter cycles, "
          f"{stats.instructions_executed} instructions, "
          f"PE utilization {stats.pe_utilization(args.pes):.3f}")
    for comp, cyc in stats.breakdown.items():
        print(f"  {comp:8s} {cyc:12.1f} cycles")
    for name, addr in sorted(globals_map.items()):
        values = interp.peek_global(addr)
        if np.all(values == values[0]):
            print(f"  {name} = {int(values[0])}")
        else:
            shown = ", ".join(str(int(v)) for v in values[:8])
            more = ", ..." if len(values) > 8 else ""
            print(f"  {name} = [{shown}{more}]")
    return 0


def _cmd_induce(args) -> int:
    from repro.core import (
        ScheduleCache, induce, lower_schedule, maspar_cost_model, parse_region,
        render_simd_code, serial_schedule, uniform_cost_model, windowed_induce,
    )
    from repro.core.search import SearchConfig
    from repro.obs import JsonlTracer

    region = parse_region(open(args.region).read())
    model = maspar_cost_model() if args.model == "maspar" else uniform_cost_model()
    config = SearchConfig(node_budget=args.budget)
    cache = ScheduleCache(cache_dir=args.cache_dir) if args.cache_dir else None
    tracer = JsonlTracer(args.trace) if args.trace else None
    try:
        if args.window:
            if args.method != "search":
                raise SystemExit("--window only applies to --method search")
            wres = windowed_induce(region, model, window_size=args.window,
                                   config=config, jobs=args.jobs,
                                   cache=cache, tracer=tracer)
            schedule = wres.schedule
            cost = schedule.cost(model)
            serial_cost = serial_schedule(region, model).cost(model)
            speedup = serial_cost / cost if cost else 1.0
            print(f"method=search/windowed cost={cost:.1f} "
                  f"serial={serial_cost:.1f} speedup={speedup:.2f}x")
            print(f"windows: {wres.num_windows} (size {wres.window_size}), "
                  f"{wres.total_nodes} nodes, jobs={wres.jobs_used}, "
                  f"cache_hits={wres.cache_hits}, "
                  f"all_optimal={wres.all_optimal}, wall={wres.wall_s:.3f}s")
        else:
            result = induce(region, model, method=args.method, config=config,
                            cache=cache, tracer=tracer)
            schedule = result.schedule
            print(f"method={args.method} cost={result.cost:.1f} "
                  f"serial={result.serial_cost:.1f} "
                  f"speedup={result.speedup_vs_serial:.2f}x")
            if result.stats is not None:
                print(f"search: {result.stats.nodes_expanded} nodes, "
                      f"optimal={result.stats.optimal}")
            if cache is not None:
                print(f"cache: {'hit' if result.cache_hit else 'miss'}")
        if cache is not None:
            snap = cache.counters.snapshot()
            print(f"cache counters: hits={snap.get('hits', 0):.0f} "
                  f"misses={snap.get('misses', 0):.0f} "
                  f"stores={snap.get('stores', 0):.0f}")
        if tracer is not None:
            print(f"trace: {tracer.events_written} events -> {tracer.path}")
    finally:
        if tracer is not None:
            tracer.close()
    print(render_simd_code(lower_schedule(schedule, region, model),
                           region.num_threads))
    return 0


def _cmd_stats(args) -> int:
    from repro.obs import render_trace_summary, summarize_trace

    print(render_trace_summary(summarize_trace(args.trace)))
    return 0


def _cmd_select(args) -> int:
    from repro.lang import compile_mimdc
    from repro.sched import select_target
    from repro.workloads.machines import table1_database

    unit = compile_mimdc(open(args.source).read())
    db = table1_database(maspar_load=args.maspar_load)
    selection = select_target(db, unit.counts, args.pes)
    print(f"would run on: {selection.description}")
    print(f"expected execution time: {selection.predicted_time * 1e3:.3f} ms")
    if args.verbose:
        print("candidates considered:")
        for (name, model), t in sorted(selection.candidate_times.items(),
                                       key=lambda kv: kv[1]):
            shown = f"{t * 1e3:.3f} ms" if t != float("inf") else "unsupported"
            print(f"  {name:14s} {model:6s} {shown}")
    return 0


def _cmd_simdc(args) -> int:
    from repro.simdc import compile_simdc, run_simdc

    unit = compile_simdc(open(args.source).read())
    if args.vir:
        print(unit.vir.render())
        return 0
    machine, result = run_simdc(unit, args.pes)
    print(f"ran on {args.pes} PEs: result = {result.value}, "
          f"{result.cycles:.1f} SIMD cycles, {result.steps} VIR steps")
    # Plural non-array values live in executor registers and are gone after
    # the run; arrays persist in PE memory, so report those.
    for name, (base, size) in sorted(unit.array_bases.items()):
        sample = machine.memory.data[:4, base:base + min(size, 4)]
        print(f"  {name}[0:{min(size, 4)}] on PEs 0..3 = {sample.tolist()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Common Subexpression Induction reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile MIMDC to MIMD stack code")
    p.add_argument("source", help="MIMDC source file")
    p.add_argument("-o", "--output", help="binary object output (.mobj)")
    p.add_argument("--asm", action="store_true", help="print assembly listing")
    p.add_argument("--counts", action="store_true",
                   help="print expected execution counts")
    p.add_argument("--no-optimize", action="store_true")
    p.set_defaults(fn=_cmd_compile)

    p = sub.add_parser("run", help="run MIMDC/.mobj on the simulated MasPar")
    p.add_argument("source", help="MIMDC source or .mobj object file")
    p.add_argument("--pes", type=int, default=64)
    p.add_argument("--no-factoring", action="store_true")
    p.add_argument("--no-subinterpreters", action="store_true")
    p.add_argument("--bias", type=int, default=0,
                   help="frequency-bias period (0 = off)")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("induce", help="run CSI on a textual region file")
    p.add_argument("region", help="region file (parse_region syntax)")
    p.add_argument("--method", default="search",
                   choices=["search", "greedy", "anneal", "factor", "lockstep", "serial"])
    p.add_argument("--model", default="maspar", choices=["maspar", "uniform"])
    p.add_argument("--budget", type=int, default=100_000)
    p.add_argument("--window", type=int, default=0, metavar="SIZE",
                   help="induce window-by-window at this window size (0 = whole region)")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel window searches (0 = all cores; needs --window)")
    p.add_argument("--trace", metavar="FILE",
                   help="append one JSONL trace event per search/window to FILE")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="persistent schedule cache directory (content-addressed)")
    p.set_defaults(fn=_cmd_induce)

    p = sub.add_parser("stats", help="summarize a JSONL trace file")
    p.add_argument("trace", help="trace file written by --trace")
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser("simdc", help="compile and run a SIMDC (data-parallel) program")
    p.add_argument("source", help="SIMDC source file")
    p.add_argument("--pes", type=int, default=64)
    p.add_argument("--vir", action="store_true", help="print the vector IR only")
    p.set_defaults(fn=_cmd_simdc)

    p = sub.add_parser("select", help="pick the best target for a program")
    p.add_argument("source", help="MIMDC source file")
    p.add_argument("--pes", type=int, default=16)
    p.add_argument("--maspar-load", type=float, default=1.0)
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(fn=_cmd_select)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
