"""Command-line interface: ``python -m repro <command>``.

Mirrors the user-facing surface of the 1992 prototype:

- ``compile``  — MIMDC source -> assembly listing or binary object file
  (the ``mimda`` step of §3.1.4);
- ``run``      — execute MIMDC source or an object file on the simulated
  MasPar through the MIMD-on-SIMD interpreter;
- ``induce``   — run CSI (or a baseline) on a textual region file, with
  optional windowing (``--window``), parallel window fan-out (``--jobs``),
  a persistent content-addressed schedule cache (``--cache-dir``) and a
  JSONL search trace (``--trace``);
- ``stats``    — summarize a ``--trace`` file (nodes, prunes, cache hit
  rate, wall time, per-field p50/p90/p99);
- ``strategies`` — inspect a portfolio strategy-outcomes store (per-bucket
  win rates, time-to-best, skip set) written by ``--strategy-store``;
- ``trace``    — render the hierarchical span trees in a ``--trace`` file
  (one tree per trace id, with per-phase self-time percentages);
- ``flightrec`` — pull captured request digests from a running server or
  router's flight recorder and replay the most recent one as a span tree;
- ``slo``      — render a running server or router's SLO burn-rate table;
- ``select``   — the "master shell script" step of §4.3: compute expected
  op counts, consult the machine database, and report where the program
  should run.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]


def _cmd_compile(args) -> int:
    from repro.isa import disassemble, encode_object
    from repro.lang import compile_mimdc

    source = open(args.source).read()
    unit = compile_mimdc(source, optimize=not args.no_optimize)
    if args.output:
        with open(args.output, "wb") as fh:
            fh.write(encode_object(unit.program))
        print(f"wrote {args.output}: {len(unit.program)} instructions, "
              f"{len(unit.program.constants)} constants")
    if args.asm or not args.output:
        print(disassemble(unit.program), end="")
    if args.counts:
        print("; expected execution counts (for target selection):")
        for op, count in sorted(unit.counts.items()):
            print(f";   {op:8s} {count:12.2f}")
    return 0


def _load_program(path: str, optimize: bool = True):
    from repro.interp.state import MemoryLayout
    from repro.isa import decode_object
    from repro.lang import compile_mimdc

    if path.endswith(".mobj"):
        program = decode_object(open(path, "rb").read())
        return program, MemoryLayout(), {}
    unit = compile_mimdc(open(path).read(), optimize=optimize)
    return unit.program, unit.layout, unit.globals_map


def _cmd_run(args) -> int:
    import numpy as np

    from repro.interp import FrequencyBias, InterpreterConfig, run_program

    program, layout, globals_map = _load_program(args.source)
    config = InterpreterConfig(
        factored=not args.no_factoring,
        subinterpreters=not args.no_subinterpreters,
        bias=FrequencyBias(period=args.bias) if args.bias else None,
    )
    interp, stats = run_program(program, args.pes, config=config, layout=layout)
    print(f"ran on {args.pes} PEs: {stats.cycles:.1f} SIMD cycles, "
          f"{stats.cycle_count} interpreter cycles, "
          f"{stats.instructions_executed} instructions, "
          f"PE utilization {stats.pe_utilization(args.pes):.3f}")
    for comp, cyc in stats.breakdown.items():
        print(f"  {comp:8s} {cyc:12.1f} cycles")
    for name, addr in sorted(globals_map.items()):
        values = interp.peek_global(addr)
        if np.all(values == values[0]):
            print(f"  {name} = {int(values[0])}")
        else:
            shown = ", ".join(str(int(v)) for v in values[:8])
            more = ", ..." if len(values) > 8 else ""
            print(f"  {name} = [{shown}{more}]")
    return 0


def _describe_result(result) -> list[str]:
    """Uniform result rendering via the unified result protocol."""
    d = result.as_dict()
    head = "method=search/windowed" if d["kind"] == "windowed" \
        else f"method={d['method']}"
    lines = [f"{head} cost={d['cost']:.1f} serial={d['serial_cost']:.1f} "
             f"speedup={d['speedup_vs_serial']:.2f}x"
             + (" [degraded]" if d["degraded"] else "")]
    if d["kind"] == "windowed":
        lines.append(f"windows: {d['windows']} (size {d['window_size']}), "
                     f"{d['nodes']} nodes, jobs={d['jobs']}, "
                     f"cache_hits={d['cache_hits']}, "
                     f"all_optimal={d['optimal']}, wall={d['wall_s']:.3f}s")
    elif d.get("portfolio"):
        info = d["portfolio"]
        lines.append(f"portfolio: winner={d.get('winner') or 'fallback'} "
                     f"bucket={info['bucket']} "
                     f"lower_bound={info['lower_bound']:.1f} "
                     f"proven={info['proven']}")
        for o in info["outcomes"]:
            if o.get("skipped"):
                status = "skipped (historical loser)"
            elif o.get("error"):
                status = f"error: {o['error']}"
            elif o.get("cost") is None:
                status = "no schedule before deadline"
            else:
                status = (f"cost={o['cost']:.1f} "
                          f"in {o['time_to_best_s'] * 1e3:.1f}ms")
            lines.append(f"  {o['strategy']:8s} {status}")
    elif result.search_stats:
        lines.append(f"search: {d['nodes']} nodes, optimal={d['optimal']}")
    return lines


def _build_request(args, region_text: str, strategy_store=None):
    """Shared ``induce``/``submit`` request construction (same flags)."""
    from repro import api

    # The CLI default budget only applies to methods that take one, so
    # `repro induce --method greedy` works without the user having to know
    # which knobs belong to which method; an *explicit* --budget on a
    # searchless method still errors, matching the api-level knob table.
    budget = args.budget
    if budget is None and args.method in api.KNOB_METHODS["budget"]:
        budget = 100_000
    try:
        return api.InductionRequest(
            region=region_text, model=args.model, method=args.method,
            window=args.window, jobs=args.jobs, budget=budget,
            engine=getattr(args, "engine", None),
            strategy_store=strategy_store,
            deadline_s=args.deadline,
            vn=getattr(args, "vn", "off"))
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc


def _cmd_induce(args) -> int:
    from repro import api
    from repro.core import ScheduleCache, lower_schedule, render_simd_code
    from repro.obs import JsonlTracer

    cache = ScheduleCache(cache_dir=args.cache_dir) if args.cache_dir else None
    tracer = JsonlTracer(args.trace) if args.trace else None
    store = None
    if getattr(args, "strategy_store", None):
        from repro.sched import StrategyOutcomesStore
        store = StrategyOutcomesStore(args.strategy_store)
    # The store goes through the constructor so the method/knob table sees
    # it (--strategy-store with a non-portfolio method is an error, not a
    # silently dead flag).
    request = _build_request(args, open(args.region).read(),
                             strategy_store=store)
    request.cache = cache
    request.tracer = tracer
    try:
        result = api.induce(request)
        for line in _describe_result(result):
            print(line)
        if cache is not None:
            print(f"cache: {'hit' if result.cache_hit else 'miss'}")
            snap = cache.counters.snapshot()
            print(f"cache counters: hits={snap.get('hits', 0):.0f} "
                  f"misses={snap.get('misses', 0):.0f} "
                  f"stores={snap.get('stores', 0):.0f}")
        if tracer is not None:
            print(f"trace: {tracer.events_written} events -> {tracer.path}")
    finally:
        if tracer is not None:
            tracer.close()
    region = request.resolved_region()
    print(render_simd_code(
        lower_schedule(result.schedule, region, request.resolved_model()),
        region.num_threads))
    return 0


def _cmd_serve(args) -> int:
    from repro.core import ScheduleCache
    from repro.obs import JsonlTracer
    from repro.service import InductionServer, ServerConfig, ServiceClient

    if args.status or args.stop or args.metrics:
        client = ServiceClient(args.socket)
        if args.status:
            print(f"service at {args.socket}:")
            for name, value in sorted(client.stats().items()):
                print(f"  {name:32s} {value:g}")
        if args.metrics:
            print(client.metrics(), end="")
        if args.stop:
            client.shutdown(drain=True)
            print("server drained and stopped")
        return 0

    cache = ScheduleCache(cache_dir=args.cache_dir) if args.cache_dir \
        else ScheduleCache()
    tracer = JsonlTracer(args.trace) if args.trace else None
    import os
    config = ServerConfig(
        endpoint=args.socket,
        workers=args.jobs or (os.cpu_count() or 1),
        queue_size=args.queue_size,
        batch_max=args.batch_max,
        default_deadline_s=args.deadline,
        allow_chaos=args.allow_chaos,
    )
    store = None
    if args.strategy_store:
        from repro.sched import StrategyOutcomesStore
        store = StrategyOutcomesStore(args.strategy_store)
    slo = flightrec = None
    if args.slo_latency is not None:
        from repro.obs import (FlightConfig, FlightRecorder, SLOConfig,
                               SLOTracker)
        # One threshold drives both: the SLO latency objective and the
        # flight recorder's "slow enough to capture" predicate.
        slo = SLOTracker(SLOConfig(latency_threshold_s=args.slo_latency))
        flightrec = FlightRecorder(
            FlightConfig(slow_threshold_s=args.slo_latency))
    server = InductionServer(config, cache=cache, tracer=tracer,
                             strategy_store=store, slo=slo,
                             flightrec=flightrec)
    print(f"induction service listening on {server.endpoint} "
          f"(workers={config.workers}, queue={config.queue_size})", flush=True)
    if args.metrics_port is not None:
        from repro.obs import start_metrics_server
        http = start_metrics_server(server.render_metrics, args.metrics_port)
        print(f"metrics endpoint on http://127.0.0.1:{http.port}/metrics",
              flush=True)
    try:
        while not server.wait_stopped(0.5):
            pass
    except KeyboardInterrupt:
        print("draining in-flight requests...")
        server.shutdown(drain=True)
    finally:
        if tracer is not None:
            tracer.close()
    print("server stopped")
    return 0


def _cmd_submit(args) -> int:
    import time
    from concurrent.futures import ThreadPoolExecutor

    from repro.obs import JsonlTracer
    from repro.service import ServiceBusy, ServiceClient

    requests = []
    for path in args.region:
        request = _build_request(args, open(path).read())
        for i in range(args.repeat):
            requests.append((f"{path}" + (f"[{i}]" if args.repeat > 1 else ""),
                             request))
    client = ServiceClient(args.socket)
    tracer = JsonlTracer(args.trace) if args.trace else None
    if tracer is not None:
        for _, request in requests:
            request.tracer = tracer

    def one(item):
        label, request = item
        try:
            return label, client.submit(request), None
        except ServiceBusy as exc:
            return label, None, exc

    start = time.monotonic()
    if args.concurrency > 1:
        with ThreadPoolExecutor(max_workers=args.concurrency) as pool:
            outcomes = list(pool.map(one, requests))
    else:
        outcomes = [one(item) for item in requests]
    wall = time.monotonic() - start

    ok = busy = 0
    try:
        for label, result, exc in outcomes:
            if result is None:
                busy += 1
                print(f"{label}: busy ({exc})")
                continue
            ok += 1
            d = result.as_dict()
            print(f"{label}: cost={d['cost']:.1f} "
                  f"speedup={d['speedup_vs_serial']:.2f}x "
                  f"disposition={result.extras.get('disposition', '?')}"
                  + (" [degraded]" if d["degraded"] else ""))
            if tracer is not None:
                fields = {k: v for k, v in d.items() if k != "kind"}
                tracer.emit("submit", label=label, **fields)
        rate = ok / wall if wall else float("inf")
        print(f"submitted {len(outcomes)} requests: {ok} ok, {busy} busy, "
              f"{wall:.3f}s ({rate:.1f} req/s)")
    finally:
        if tracer is not None:
            tracer.close()
    return 0 if busy == 0 else 1


def _endpoint_arg(spec: str):
    """argparse type for --socket/--peers: lenient endpoint parsing."""
    from repro.service.endpoint import Endpoint

    try:
        return Endpoint.parse_lenient(spec)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _cluster_config(args):
    from repro.cluster import ClusterConfig, RetryPolicy

    try:
        return ClusterConfig(
            endpoints=tuple(args.peers),
            replication=args.replication,
            retry=RetryPolicy(attempts=args.retries),
            probe_interval_s=args.probe_interval,
            mark_down_after=args.mark_down_after,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc


def _cmd_cluster_serve(args) -> int:
    import os

    from repro.cluster import RemoteScheduleCache
    from repro.core import ScheduleCache
    from repro.service import InductionServer, ServerConfig

    config = _cluster_config(args)
    if str(args.socket) not in config.node_names:
        raise SystemExit(
            f"--socket {args.socket} must be one of the --peers endpoints "
            "(a node has to know its own ring position)")
    local = ScheduleCache(capacity=args.cache_capacity,
                          cache_dir=args.cache_dir)
    cache = RemoteScheduleCache(local, config, self_name=str(args.socket))
    server = InductionServer(
        ServerConfig(endpoint=args.socket,
                     workers=args.jobs or (os.cpu_count() or 1),
                     queue_size=args.queue_size,
                     default_deadline_s=args.deadline,
                     allow_chaos=args.allow_chaos),
        cache=cache)
    print(f"cluster node listening on {server.endpoint} "
          f"(peers={len(config.endpoints)}, "
          f"replication={config.replication})", flush=True)
    try:
        while not server.wait_stopped(0.5):
            pass
    except KeyboardInterrupt:
        print("draining in-flight requests...")
        server.shutdown(drain=True)
    print("node stopped")
    return 0


def _cmd_cluster_route(args) -> int:
    from repro.cluster import ClusterRouter
    from repro.obs import JsonlTracer

    config = _cluster_config(args)
    tracer = JsonlTracer(args.trace) if args.trace else None
    slo = flightrec = None
    if args.slo_latency is not None:
        from repro.obs import (FlightConfig, FlightRecorder, SLOConfig,
                               SLOTracker)
        slo = SLOTracker(SLOConfig(latency_threshold_s=args.slo_latency))
        flightrec = FlightRecorder(
            FlightConfig(slow_threshold_s=args.slo_latency))
    router = ClusterRouter(args.socket, config, tracer=tracer,
                           slo=slo, flightrec=flightrec)
    print(f"cluster router listening on {router.endpoint} "
          f"(nodes={len(config.endpoints)})", flush=True)
    if args.metrics_port is not None:
        from repro.obs import start_metrics_server
        http = start_metrics_server(router.render_metrics, args.metrics_port)
        print(f"metrics endpoint on http://127.0.0.1:{http.port}/metrics",
              flush=True)
    try:
        while not router.wait_stopped(0.5):
            pass
    except KeyboardInterrupt:
        router.shutdown()
    finally:
        if tracer is not None:
            tracer.close()
    print("router stopped")
    return 0


def _router_op(endpoint, message: dict, timeout: float = 30.0) -> dict:
    """One framed request/reply against a running router."""
    from repro.service import protocol

    try:
        with endpoint.connect(timeout=timeout) as sock:
            protocol.send_message(sock, message)
            reply = protocol.recv_message(sock)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"router at {endpoint} unreachable: {exc}") from exc
    if reply is None:
        raise SystemExit(f"router at {endpoint} closed the connection")
    return reply


def _node_slo_cell(slo: dict) -> str:
    """One-word SLO status for the cluster table, from probed gauges."""
    if not slo:
        return "-"
    burns = [v for k, v in slo.items() if "_burn_" in k]
    worst = max(burns) if burns else 0.0
    state = "ok" if slo.get("slo_healthy", 1.0) else "burning"
    return f"{state} ({worst:.2f}x)"


def _cmd_cluster_status(args) -> int:
    import json

    from repro.util.tables import format_table

    reply = _router_op(args.socket, {"op": "cluster_status"})
    if reply.get("status") != "cluster":
        raise SystemExit(f"bad cluster_status reply: {reply}")
    cluster = reply["cluster"]
    if args.json:
        print(json.dumps(cluster, indent=2, sort_keys=True))
        return 0
    from repro.service.endpoint import Endpoint

    counters = cluster["counters"]
    rows = []
    labels = set()
    for node in cluster["nodes"]:
        # Per-node counters are keyed by the metric-safe endpoint label.
        label = Endpoint.parse_lenient(node["endpoint"]).label
        labels.add(label)
        rows.append([
            node["endpoint"],
            node["state"],
            f"{node['queue_depth']:g}",
            f"{counters.get(f'route_{label}', 0):g}",
            f"{counters.get(f'retry_{label}', 0):g}",
            f"{counters.get(f'failover_{label}', 0):g}",
            _node_slo_cell(node.get("slo") or {}),
            node["last_error"] or "",
        ])
    print(format_table(
        ["node", "state", "queue", "routed", "retries", "failovers",
         "slo", "last error"],
        rows,
        title=(f"cluster via {args.socket}: {len(cluster['nodes'])} nodes, "
               f"{len(cluster['ring_nodes'])} routable, "
               f"inflight={cluster['inflight']}, "
               f"uptime={cluster['uptime_s']:.0f}s")))
    # Per-node counters are in the table; print only the aggregates below.
    per_node = {f"{kind}_{label}" for label in labels
                for kind in ("route", "retry", "failover")}
    for name, value in sorted(counters.items()):
        if name not in per_node:
            print(f"  {name:32s} {value:g}")
    return 0


def _cmd_cluster_drain(args) -> int:
    reply = _router_op(args.socket,
                       {"op": "cluster_drain", "node": args.node})
    if reply.get("status") != "ok":
        raise SystemExit(f"drain failed: {reply.get('error', reply)}")
    print(f"draining {args.node}: in-flight work finishes, ring stops "
          "routing new requests to it")
    return 0


def _cmd_strategies(args) -> int:
    import os

    from repro.sched import StrategyOutcomesStore

    if not os.path.exists(args.store):
        print(f"no strategy-outcomes store at {args.store}")
        return 1
    store = StrategyOutcomesStore(args.store)
    print(store.render())
    print(f"({store.races} races recorded in {args.store})")
    return 0


def _cmd_stats(args) -> int:
    from repro.obs import render_trace_summary, summarize_trace

    print(render_trace_summary(summarize_trace(args.trace)))
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import build_traces, load_span_events, render_trace_trees

    events = load_span_events(args.trace)
    trees = build_traces(events)
    if not trees:
        print(f"no span events in {args.trace}")
        return 1
    print(render_trace_trees(trees, trace_id=args.trace_id,
                             last_only=args.last))
    return 0


def _digest_row(digest: dict) -> list:
    flags = [name for name in ("slow", "failed", "degraded", "failed_over")
             if digest.get(name)]
    route = ">".join(digest.get("route") or [])
    return [
        digest["seq"],
        digest["fingerprint"][:12],
        digest["outcome"],
        f"{digest['wall_s'] * 1e3:.1f}ms",
        ",".join(flags) or "-",
        route or "-",
        (digest.get("trace") or "")[:12] or "-",
    ]


def _cmd_flightrec(args) -> int:
    import json

    from repro.obs import build_traces, render_trace_trees
    from repro.service import ServiceClient
    from repro.util.tables import format_table

    client = ServiceClient(args.socket)
    snap = client.flightrec(slow=args.slow, failed=args.failed,
                            last=args.last)
    if args.json:
        print(json.dumps(snap, indent=2, sort_keys=True))
        return 0
    digests = snap["digests"]
    print(f"flight recorder at {args.socket}: "
          f"{snap['considered']} considered, {snap['captured']} captured, "
          f"{snap['buffered']} buffered, {len(digests)} matching")
    if not digests:
        return 1
    print(format_table(
        ["seq", "fingerprint", "outcome", "wall", "flags", "route", "trace"],
        [_digest_row(d) for d in digests]))
    newest = digests[-1]
    spans = [e for e in (newest.get("spans") or [])
             if e.get("kind") == "span"]
    if spans:
        trees = build_traces(spans)
        print(f"replay of digest #{newest['seq']} "
              f"({len(spans)} recorded spans):")
        print(render_trace_trees(trees))
    else:
        print(f"digest #{newest['seq']} captured no spans")
    return 0


def _render_slo(status: dict) -> str:
    from repro.util.tables import format_table

    rows = []
    for entry in status["objectives"]:
        threshold = (f"<{entry['threshold_s']:g}s"
                     if entry.get("threshold_s") is not None else "ok-rate")
        for window in entry["windows"]:
            rows.append([
                entry["objective"],
                threshold,
                f"{entry['target'] * 100:g}%",
                f"{window['window_s']:g}s",
                window["requests"],
                window["bad"],
                f"{window['burn_rate']:.2f}x",
            ])
    health = "HEALTHY" if status["healthy"] else "BURNING"
    return format_table(
        ["objective", "goal", "target", "window", "requests", "bad", "burn"],
        rows,
        title=(f"SLO {health}: {status['requests_total']} requests "
               "(burn <= 1.00x is within budget)"))


def _cmd_slo(args) -> int:
    import json

    from repro.service import ServiceClient

    status = ServiceClient(args.socket).slo()
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    print(_render_slo(status))
    return 0 if status["healthy"] else 1


def _cmd_fuzz(args) -> int:
    import json
    import os
    import tempfile

    from repro.core.search import ENGINES
    from repro.fuzz import (FuzzConfig, case_from_payload, check_case,
                            entry_needs_vn, fuzz_run, load_corpus)
    from repro.obs import JsonlTracer

    engines = ENGINES if args.engine == "all" else (args.engine,)

    if args.replay:
        try:
            if os.path.isdir(args.replay):
                entries = load_corpus(args.replay)
            else:
                payload = json.loads(open(args.replay).read())
                entries = [(args.replay, case_from_payload(payload["case"]))]
        except Exception as exc:
            print(f"error: cannot load corpus from {args.replay}: {exc}")
            return 1
        if not entries:
            print(f"no corpus entries under {args.replay}")
            return 1
        bad = 0
        for path, case in entries:
            # Entries recorded by a vn_* oracle re-run under the vn battery
            # even without --vn, so they replay against the bug they found.
            found = check_case(case, engines=engines,
                               vn=args.vn or entry_needs_vn(path))
            status = "ok" if not found else "FAIL"
            print(f"{status}  {path}  [{case.describe()}]")
            for failure in found:
                print(f"      {failure}")
            bad += bool(found)
        print(f"replayed {len(entries)} corpus entries, {bad} failing")
        return 1 if bad else 0

    tracer = JsonlTracer(args.trace) if args.trace else None
    try:
        with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as workdir:
            config = FuzzConfig(
                seed=args.seed,
                cases=args.cases,
                max_ops=args.max_ops,
                max_threads=args.max_threads,
                time_budget_s=args.time_budget,
                engines=engines,
                program_fraction=args.program_fraction,
                cluster_fraction=args.cluster_fraction,
                shrink=not args.no_shrink,
                corpus_dir=args.corpus_dir,
                fail_fast=args.fail_fast,
                workdir=workdir,
                vn=args.vn,
            )
            report = fuzz_run(config, tracer=tracer)
    finally:
        if tracer is not None:
            tracer.close()

    rate = report.cases_run / report.wall_s if report.wall_s > 0 else 0.0
    print(f"fuzz: seed={report.seed} cases={report.cases_run} "
          f"(regions={report.region_cases}, programs={report.program_cases}) "
          f"engines={','.join(engines)}")
    print(f"fuzz: {report.wall_s:.2f}s ({rate:.1f} cases/s), "
          f"stopped by {report.stopped_by}")
    if tracer is not None:
        print(f"trace: {args.trace} (summarize with `repro stats {args.trace}`)")
    if report.ok:
        print("fuzz: all oracles agree")
        return 0
    print(f"fuzz: {len(report.failures)} FAILING case(s)")
    for failure in report.failures:
        print(f"  {failure.summary()}")
        for oracle_failure in failure.failures:
            print(f"      {oracle_failure}")
        print(f"      reproduce: repro fuzz --seed {report.seed} "
              f"--cases {failure.case.index + 1}")
    for path in report.corpus_paths:
        print(f"  saved: {path}")
    return 1


def _cmd_select(args) -> int:
    from repro.lang import compile_mimdc
    from repro.sched import select_target
    from repro.workloads.machines import table1_database

    unit = compile_mimdc(open(args.source).read())
    db = table1_database(maspar_load=args.maspar_load)
    selection = select_target(db, unit.counts, args.pes)
    print(f"would run on: {selection.description}")
    print(f"expected execution time: {selection.predicted_time * 1e3:.3f} ms")
    if args.verbose:
        print("candidates considered:")
        for (name, model), t in sorted(selection.candidate_times.items(),
                                       key=lambda kv: kv[1]):
            shown = f"{t * 1e3:.3f} ms" if t != float("inf") else "unsupported"
            print(f"  {name:14s} {model:6s} {shown}")
    return 0


def _cmd_simdc(args) -> int:
    from repro.simdc import compile_simdc, run_simdc

    unit = compile_simdc(open(args.source).read())
    if args.vir:
        print(unit.vir.render())
        return 0
    machine, result = run_simdc(unit, args.pes)
    print(f"ran on {args.pes} PEs: result = {result.value}, "
          f"{result.cycles:.1f} SIMD cycles, {result.steps} VIR steps")
    # Plural non-array values live in executor registers and are gone after
    # the run; arrays persist in PE memory, so report those.
    for name, (base, size) in sorted(unit.array_bases.items()):
        sample = machine.memory.data[:4, base:base + min(size, 4)]
        print(f"  {name}[0:{min(size, 4)}] on PEs 0..3 = {sample.tolist()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Common Subexpression Induction reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile MIMDC to MIMD stack code")
    p.add_argument("source", help="MIMDC source file")
    p.add_argument("-o", "--output", help="binary object output (.mobj)")
    p.add_argument("--asm", action="store_true", help="print assembly listing")
    p.add_argument("--counts", action="store_true",
                   help="print expected execution counts")
    p.add_argument("--no-optimize", action="store_true")
    p.set_defaults(fn=_cmd_compile)

    p = sub.add_parser("run", help="run MIMDC/.mobj on the simulated MasPar")
    p.add_argument("source", help="MIMDC source or .mobj object file")
    p.add_argument("--pes", type=int, default=64)
    p.add_argument("--no-factoring", action="store_true")
    p.add_argument("--no-subinterpreters", action="store_true")
    p.add_argument("--bias", type=int, default=0,
                   help="frequency-bias period (0 = off)")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("induce", help="run CSI on a textual region file")
    p.add_argument("region", help="region file (parse_region syntax)")
    p.add_argument("--method", default="search",
                   choices=["search", "greedy", "anneal", "factor",
                            "lockstep", "serial", "portfolio"])
    p.add_argument("--model", default="maspar", choices=["maspar", "uniform"])
    p.add_argument("--budget", type=int, default=None,
                   help="branch-and-bound node budget (default 100000; only "
                        "valid for methods that search)")
    p.add_argument("--engine", default=None,
                   choices=["bitmask", "array", "legacy"],
                   help="branch-and-bound engine (default bitmask; array is "
                        "the batched fast path; legacy is the reference "
                        "implementation)")
    p.add_argument("--window", type=int, default=0, metavar="SIZE",
                   help="induce window-by-window at this window size (0 = whole region)")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel window searches (0 = all cores; needs --window)")
    p.add_argument("--vn", default="off", choices=["off", "on", "auto"],
                   help="cross-thread value-numbering pre-pass: canonicalize "
                        "equivalent subexpressions before induction (auto = "
                        "keep the rewrite only when it helps)")
    p.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                   help="wall-clock budget; on expiry degrade to the greedy "
                        "schedule (flagged degraded, never an error)")
    p.add_argument("--trace", metavar="FILE",
                   help="append one JSONL trace event per search/window to FILE")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="persistent schedule cache directory (content-addressed)")
    p.add_argument("--strategy-store", metavar="FILE",
                   help="persistent strategy-outcomes store consulted and "
                        "updated by --method portfolio")
    p.set_defaults(fn=_cmd_induce)

    p = sub.add_parser(
        "serve", help="run (or query) the long-running induction service")
    p.add_argument("--socket", type=_endpoint_arg, default="/tmp/repro.sock",
                   metavar="ENDPOINT",
                   help="unix:///path or tcp://host:port (bare unix paths "
                        "and host:port accepted)")
    p.add_argument("--jobs", type=int, default=0,
                   help="worker processes (0 = all cores)")
    p.add_argument("--queue-size", type=int, default=64,
                   help="admission-control bound; excess requests get 'busy'")
    p.add_argument("--batch-max", type=int, default=16,
                   help="max requests batched/deduplicated per dispatch")
    p.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                   help="default per-request deadline (requests may override)")
    p.add_argument("--trace", metavar="FILE",
                   help="append one JSONL trace event per service batch/request")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="persistent schedule cache directory (content-addressed)")
    p.add_argument("--strategy-store", metavar="FILE",
                   help="persistent strategy-outcomes store driving portfolio "
                        "strategy selection (inspect with `repro strategies`)")
    p.add_argument("--allow-chaos", action="store_true",
                   help="honour client fault injection (tests only)")
    p.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                   help="serve Prometheus metrics over HTTP on this "
                        "loopback port (0 = pick a free port)")
    p.add_argument("--slo-latency", type=float, default=None,
                   metavar="SECONDS",
                   help="latency SLO threshold: drives the slo_* burn-rate "
                        "gauges and the flight recorder's slow-capture "
                        "predicate (default 1.0 when unset)")
    p.add_argument("--status", action="store_true",
                   help="print a running server's stats snapshot and exit")
    p.add_argument("--metrics", action="store_true",
                   help="print a running server's Prometheus metrics and exit")
    p.add_argument("--stop", action="store_true",
                   help="drain and stop a running server, then exit")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "submit", help="submit region files to a running induction service")
    p.add_argument("region", nargs="+", help="region file(s) (parse_region syntax)")
    p.add_argument("--socket", type=_endpoint_arg, default="/tmp/repro.sock",
                   metavar="ENDPOINT",
                   help="service or cluster-router endpoint (unix:///path, "
                        "tcp://host:port, or the bare legacy forms)")
    p.add_argument("--method", default="search",
                   choices=["search", "greedy", "anneal", "factor",
                            "lockstep", "serial", "portfolio"])
    p.add_argument("--model", default="maspar", choices=["maspar", "uniform"])
    p.add_argument("--budget", type=int, default=None,
                   help="branch-and-bound node budget (default 100000; only "
                        "valid for methods that search)")
    p.add_argument("--engine", default=None,
                   choices=["bitmask", "array", "legacy"],
                   help="branch-and-bound engine (default bitmask; array is "
                        "the batched fast path; legacy is the reference "
                        "implementation)")
    p.add_argument("--window", type=int, default=0, metavar="SIZE",
                   help="induce window-by-window at this window size (0 = whole region)")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel window searches server-side (needs --window)")
    p.add_argument("--vn", default="off", choices=["off", "on", "auto"],
                   help="server-side value-numbering pre-pass (see "
                        "`repro induce --vn`)")
    p.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                   help="per-request deadline; server degrades to greedy on expiry")
    p.add_argument("--trace", metavar="FILE",
                   help="append one JSONL event per reply to FILE")
    p.add_argument("--repeat", type=int, default=1,
                   help="submit each region this many times (dedup/cache demo)")
    p.add_argument("--concurrency", type=int, default=1,
                   help="client threads submitting in parallel")
    p.set_defaults(fn=_cmd_submit)

    p = sub.add_parser(
        "cluster",
        help="run a sharded multi-node induction cluster (nodes + router)")
    csub = p.add_subparsers(dest="cluster_command", required=True)

    def _cluster_common(cp, socket_help):
        cp.add_argument("--socket", type=_endpoint_arg, required=True,
                        metavar="ENDPOINT", help=socket_help)
        cp.add_argument("--peers", type=_endpoint_arg, nargs="+",
                        required=True, metavar="ENDPOINT",
                        help="every node endpoint in the cluster, in any "
                             "order (the ring is derived from the set)")
        cp.add_argument("--replication", type=int, default=2,
                        help="ring owners holding each schedule")
        cp.add_argument("--retries", type=int, default=3,
                        help="total forward attempts per request")
        cp.add_argument("--probe-interval", type=float, default=1.0,
                        metavar="SECONDS", help="heartbeat probe cadence")
        cp.add_argument("--mark-down-after", type=int, default=3,
                        help="consecutive failures before a node is down")

    cp = csub.add_parser(
        "serve", help="run one induction node with the cluster cache tier")
    _cluster_common(cp, "this node's own endpoint (must appear in --peers)")
    cp.add_argument("--jobs", type=int, default=0,
                    help="worker processes (0 = all cores)")
    cp.add_argument("--queue-size", type=int, default=64)
    cp.add_argument("--cache-capacity", type=int, default=1024,
                    help="in-memory schedule cache entries on this node")
    cp.add_argument("--cache-dir", metavar="DIR",
                    help="persistent schedule cache directory")
    cp.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                    help="default per-request deadline")
    cp.add_argument("--allow-chaos", action="store_true",
                    help="honour client fault injection (tests only)")
    cp.set_defaults(fn=_cmd_cluster_serve)

    cp = csub.add_parser(
        "route", help="run the cluster front door (routes, dedups, fails over)")
    _cluster_common(cp, "the router's listening endpoint")
    cp.add_argument("--trace", metavar="FILE",
                    help="append routing span events (cluster.route/attempt/"
                         "failover) to this JSONL trace file")
    cp.add_argument("--slo-latency", type=float, default=None,
                    metavar="SECONDS",
                    help="latency SLO threshold for the router's own slo_* "
                         "gauges and flight recorder")
    cp.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                    help="serve Prometheus metrics over HTTP on this "
                         "loopback port (0 = pick a free port)")
    cp.set_defaults(fn=_cmd_cluster_route)

    cp = csub.add_parser("status", help="show the per-node membership table "
                                        "and routing counters")
    cp.add_argument("--socket", type=_endpoint_arg, required=True,
                    metavar="ENDPOINT", help="a running router's endpoint")
    cp.add_argument("--json", action="store_true",
                    help="print the raw cluster_status reply as JSON")
    cp.set_defaults(fn=_cmd_cluster_status)

    cp = csub.add_parser(
        "drain", help="drain one node (ring stops routing new work to it)")
    cp.add_argument("--socket", type=_endpoint_arg, required=True,
                    metavar="ENDPOINT", help="a running router's endpoint")
    cp.add_argument("--node", required=True, metavar="NAME",
                    help="the node's canonical endpoint name "
                         "(as shown by cluster status)")
    cp.set_defaults(fn=_cmd_cluster_drain)

    p = sub.add_parser(
        "strategies",
        help="inspect a portfolio strategy-outcomes store (win rates, skips)")
    p.add_argument("store", help="outcomes-store JSON file "
                                 "(--strategy-store of induce/serve)")
    p.set_defaults(fn=_cmd_strategies)

    p = sub.add_parser("stats", help="summarize a JSONL trace file")
    p.add_argument("trace", help="trace file written by --trace")
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser(
        "trace", help="render span trees from a JSONL trace file")
    p.add_argument("trace", help="trace file written by --trace")
    p.add_argument("--trace-id", metavar="ID",
                   help="show only the trace whose id starts with ID")
    p.add_argument("--last", action="store_true",
                   help="show only the most recent trace")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "flightrec",
        help="pull request digests from a server/router flight recorder")
    p.add_argument("--socket", type=_endpoint_arg, default="/tmp/repro.sock",
                   metavar="ENDPOINT",
                   help="a running server's or router's endpoint")
    p.add_argument("--slow", action="store_true",
                   help="only digests that crossed the slow threshold")
    p.add_argument("--failed", action="store_true",
                   help="only digests whose outcome was not ok")
    p.add_argument("--last", type=int, default=None, metavar="N",
                   help="only the N most recent matching digests")
    p.add_argument("--json", action="store_true",
                   help="print the raw flightrec reply as JSON")
    p.set_defaults(fn=_cmd_flightrec)

    p = sub.add_parser(
        "slo", help="show a server/router SLO burn-rate table")
    p.add_argument("--socket", type=_endpoint_arg, default="/tmp/repro.sock",
                   metavar="ENDPOINT",
                   help="a running server's or router's endpoint")
    p.add_argument("--json", action="store_true",
                   help="print the raw slo reply as JSON")
    p.set_defaults(fn=_cmd_slo)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing: generated cases vs independent oracles")
    p.add_argument("--seed", type=int, default=None,
                   help="root seed (default: $REPRO_SEED, else fresh entropy)")
    p.add_argument("--cases", type=int, default=200,
                   help="maximum number of generated cases")
    p.add_argument("--max-ops", type=int, default=24,
                   help="maximum total ops per generated region")
    p.add_argument("--max-threads", type=int, default=4,
                   help="maximum threads per generated region")
    p.add_argument("--time-budget", type=float, default=None, metavar="SECONDS",
                   help="stop after this much wall time even if cases remain")
    p.add_argument("--engine",
                   choices=("all", "bitmask", "array", "legacy"),
                   default="all",
                   help="search engine(s); 'all' asserts cross-engine parity")
    p.add_argument("--program-fraction", type=float, default=0.15,
                   help="fraction of cases that are MIMDC programs")
    p.add_argument("--cluster-fraction", type=float, default=0.1,
                   help="fraction of region cases also routed through an "
                        "in-process 3-node cluster and compared against the "
                        "local result (0 = never boot the cluster)")
    p.add_argument("--corpus-dir",
                   help="persist failing cases as JSON under this directory")
    p.add_argument("--vn", action="store_true",
                   help="run the value-numbering differential oracle on every "
                        "region case and bias generation toward cross-thread "
                        "redundancy")
    p.add_argument("--no-shrink", action="store_true",
                   help="skip delta-debugging of failing cases")
    p.add_argument("--fail-fast", action="store_true",
                   help="stop at the first failing case")
    p.add_argument("--trace", help="write fuzz spans/events to a JSONL trace")
    p.add_argument("--replay", metavar="PATH",
                   help="replay a corpus entry (or directory) instead of "
                        "generating new cases")
    p.set_defaults(fn=_cmd_fuzz)

    p = sub.add_parser("simdc", help="compile and run a SIMDC (data-parallel) program")
    p.add_argument("source", help="SIMDC source file")
    p.add_argument("--pes", type=int, default=64)
    p.add_argument("--vir", action="store_true", help="print the vector IR only")
    p.set_defaults(fn=_cmd_simdc)

    p = sub.add_parser("select", help="pick the best target for a program")
    p.add_argument("source", help="MIMDC source file")
    p.add_argument("--pes", type=int, default=16)
    p.add_argument("--maspar-load", type=float, default=1.0)
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(fn=_cmd_select)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
