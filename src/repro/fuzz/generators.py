"""Seeded random case generators for the differential fuzzer.

Three case families, all deterministic for a given ``(seed, index)`` pair:

- **random regions** — straight-line multi-thread code with controllable
  thread count, op count, dependence density (how often an op reads or
  rewrites earlier symbols, creating flow/anti/output dependences) and
  merge-class skew (a Zipf-flavoured opcode draw, so some classes are hot
  and induction actually has something to merge);
- **handler regions** — random subsets of the interpreter handler bodies
  from :mod:`repro.workloads.threads`, the paper's motivating workload;
- **MIMDC programs** — either a :mod:`repro.workloads.programs` kernel
  template with a small iteration count, or a synthesized straight-line
  function of random integer expressions (the thing that exercises
  :mod:`repro.lang.fold` on shapes nobody hand-wrote).

Cost models and search configurations are randomized too, within the
envelope the engines promise to agree on: slot costs are kept exactly
representable (ints and halves) so cross-engine counter parity is exact,
and the exhaustive/all-choices ablations are only enabled on regions small
enough that the legacy oracle finishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.costmodel import CostModel, maspar_cost_model, uniform_cost_model
from repro.core.ops import Operation, Region, ThreadCode
from repro.core.search import SearchConfig
from repro.util.rng import derive_rng
from repro.workloads.threads import (
    HANDLER_MNEMONICS,
    interpreter_handler_region,
    interpreter_micro_cost_model,
)

__all__ = ["FuzzCase", "GeneratorSpec", "generate_case"]


@dataclass(frozen=True)
class GeneratorSpec:
    """Knobs for :func:`generate_case` (the fuzzer's search space)."""

    max_threads: int = 4
    max_ops: int = 24            # total across threads
    #: Exhaustive subset enumeration / all-thread-choices ablations are only
    #: drawn for regions at or below this many ops (legacy blows up beyond).
    max_ops_exhaustive: int = 8
    dependence_density: float = 0.6
    merge_skew: float = 1.1      # Zipf exponent over the opcode pool
    imm_probability: float = 0.35
    #: Fraction of cases that are MIMDC programs rather than regions.
    program_fraction: float = 0.15
    #: Fraction of region cases drawn from interpreter handler subsets.
    handler_fraction: float = 0.15
    #: Cross-thread redundancy: per-thread probability of planting one
    #: *disguised* copy of a region-shared expression template (renamed
    #: temps, shuffled commutative reads, ``mul #2^k``/``shl #k`` swaps,
    #: int/float immediates, appended identity ops) — the workload the
    #: value-numbering pre-pass exists to canonicalize.  0 (default) draws
    #: nothing and leaves the RNG stream bit-identical to pre-vn runs.
    redundancy: float = 0.0

    def __post_init__(self) -> None:
        if self.max_threads < 1:
            raise ValueError(f"need at least one thread, got {self.max_threads}")
        if self.max_ops < 1:
            raise ValueError(f"need at least one op, got {self.max_ops}")
        if not 0.0 <= self.program_fraction <= 1.0:
            raise ValueError(f"bad program fraction {self.program_fraction}")
        if not 0.0 <= self.redundancy <= 1.0:
            raise ValueError(f"bad redundancy {self.redundancy}")


@dataclass(frozen=True)
class FuzzCase:
    """One generated (or corpus-loaded) input to the differential oracles.

    ``kind`` is ``"region"`` (region + model + config, fed to the search
    engines) or ``"program"`` (MIMDC ``source``, fed to the compiler and
    interpreter with folding on vs off).  ``seed``/``index`` identify the
    case under the run's root seed; ``note`` says which generator family
    produced it.
    """

    kind: str
    seed: int
    index: int
    region: Region | None = None
    model: CostModel | None = None
    config: SearchConfig | None = None
    source: str | None = None
    note: str = ""
    # Populated by the shrinker so reports can show the reduction.
    shrunk_from_ops: int | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in ("region", "program"):
            raise ValueError(f"unknown case kind {self.kind!r}")
        if self.kind == "region" and (self.region is None or self.model is None
                                      or self.config is None):
            raise ValueError("region case needs region, model and config")
        if self.kind == "program" and not self.source:
            raise ValueError("program case needs MIMDC source")

    @property
    def num_ops(self) -> int:
        return self.region.num_ops if self.region is not None else 0

    def describe(self) -> str:
        if self.kind == "region":
            return (f"region[{self.note}] threads={self.region.num_threads} "
                    f"ops={self.region.num_ops} "
                    f"engine-knobs=(budget={self.config.node_budget}, "
                    f"maximal={self.config.maximal_merges_only}, "
                    f"choices={self.config.branch_thread_choices})")
        lines = len(self.source.strip().splitlines())
        return f"program[{self.note}] lines={lines}"


# --- opcode / symbol pools -------------------------------------------------

#: A pool wide enough to stress class bucketing, narrow enough to merge.
_OPCODES = ("ld", "st", "add", "sub", "mul", "div", "and", "or",
            "shl", "eq", "mov", "cmp")

#: Immediates include equal-valued int/float pairs so ``require_equal_imm``
#: and the cache's int-vs-float canonicalization both get exercised.
_IMMEDIATES = (0, 1, 2, 3, -1, 7, 1.5, 2.5, 1.0, 2)


def _zipf_weights(n: int, skew: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=float)
    w = ranks ** -max(skew, 0.0)
    return w / w.sum()


#: Template opcodes the redundancy planter composes over — all pure, all
#: in the vn rewriter's vocabulary so disguises actually canonicalize.
_TEMPLATE_OPCODES = ("add", "sub", "mul", "and", "or")


def _redundancy_template(rng: np.random.Generator) -> tuple[str, list[tuple]]:
    """One region-shared expression template: (root symbol, steps).

    Each step is ``(opcode, operand step indices, imm)``; step 0 loads the
    shared root so every thread's copy starts from the same global value.
    """
    root = f"g{'xyz'[int(rng.integers(3))]}"
    steps: list[tuple] = [("ld", (), None)]
    for j in range(1, int(rng.integers(3, 6))):
        opcode = _TEMPLATE_OPCODES[int(rng.integers(len(_TEMPLATE_OPCODES)))]
        prev = int(rng.integers(j))
        if rng.random() < 0.55:
            steps.append((opcode, (prev,), int(rng.choice((0, 1, 2, 4)))))
        else:
            steps.append((opcode, (prev, int(rng.integers(j))), None))
    return root, steps


def _plant_template(rng: np.random.Generator, thread: int,
                    template: tuple[str, list[tuple]],
                    budget: int) -> list[tuple]:
    """Render the template into thread ``thread`` under a random disguise.

    Returns ``(opcode, reads, write, imm)`` tuples.  Disguises are all
    shapes the vn pre-pass claims to see through: per-thread temp names,
    reversed commutative reads, ``mul #2^k`` spelled as ``shl #k``,
    integral-float immediates, and an appended identity op (a no-op
    ``add/or/shl #0`` chain link) standing in for a plain copy.
    """
    root, steps = template
    out: list[tuple] = []
    names: dict[int, str] = {}
    for j, (opcode, operands, imm) in enumerate(steps[:budget]):
        dst = f"T{thread}r{j}"
        if opcode == "ld":
            reads: tuple[str, ...] = (root,)
        else:
            reads = tuple(names[o] for o in operands)
            if opcode == "mul" and imm in (2, 4) and rng.random() < 0.4:
                opcode, imm = "shl", int(imm).bit_length() - 1
            if isinstance(imm, int) and rng.random() < 0.3:
                imm = float(imm)
            if len(reads) > 1 and opcode in ("add", "mul", "and", "or") \
                    and rng.random() < 0.5:
                reads = tuple(reversed(reads))
        out.append((opcode, reads, dst, imm))
        names[j] = dst
    if len(out) < budget and rng.random() < 0.5:
        # Disguise the final value behind an identity op.
        last = names[len(out) - 1]
        opcode = ("add", "or", "shl")[int(rng.integers(3))]
        out.append((opcode, (last,), f"T{thread}rid", 0))
    return out


def _random_region(rng: np.random.Generator, spec: GeneratorSpec) -> Region:
    """Random straight-line region with genuine dependence structure.

    Per thread, each op mostly writes a fresh temp; with probability tied
    to ``dependence_density`` it reads earlier temps (flow deps), rewrites
    an existing temp (output deps, and anti deps against its readers), or
    writes a thread-shared accumulator symbol.  With ``spec.redundancy``
    on, threads additionally open with a disguised copy of one shared
    expression template (see :func:`_plant_template`), and the random tail
    below can read into it — cross-thread redundancy embedded in ordinary
    dependence structure, not a sterile side-channel.
    """
    num_threads = int(rng.integers(1, spec.max_threads + 1))
    total = int(rng.integers(num_threads, spec.max_ops + 1))
    # Distribute ops over threads: at least one each, lengths uneven, and
    # the sum never exceeds the drawn total (so max_ops is a hard cap).
    lengths = [1] * num_threads
    for _ in range(total - num_threads):
        lengths[int(rng.integers(num_threads))] += 1

    template = _redundancy_template(rng) if spec.redundancy > 0 else None
    weights = _zipf_weights(len(_OPCODES), spec.merge_skew)
    threads: list[ThreadCode] = []
    for t, length in enumerate(lengths):
        ops: list[Operation] = []
        written: list[str] = []
        if template is not None and length >= 2 \
                and rng.random() < spec.redundancy:
            for opcode, reads, dst, imm in \
                    _plant_template(rng, t, template, length):
                ops.append(Operation(t, len(ops), opcode, reads, (dst,), imm))
                written.append(dst)
        for k in range(len(ops), length):
            opcode = str(rng.choice(_OPCODES, p=weights))
            reads: tuple[str, ...] = ()
            if written and rng.random() < spec.dependence_density:
                n_reads = int(rng.integers(1, min(2, len(written)) + 1))
                picks = rng.choice(len(written), size=n_reads, replace=False)
                reads = tuple(written[int(i)] for i in picks)
            if written and rng.random() < spec.dependence_density * 0.4:
                # Rewrite an existing symbol: output + anti dependences.
                writes = (written[int(rng.integers(len(written)))],)
            elif rng.random() < 0.15:
                writes = (f"T{t}acc",)
                if writes[0] not in written:
                    written.append(writes[0])
            else:
                writes = (f"T{t}v{k}",)
                written.append(writes[0])
            imm = None
            if rng.random() < spec.imm_probability:
                imm = _IMMEDIATES[int(rng.integers(len(_IMMEDIATES)))]
            ops.append(Operation(t, k, opcode, reads, writes, imm))
        threads.append(ThreadCode(t, tuple(ops)))
    return Region(tuple(threads))


def _random_model(rng: np.random.Generator, region: Region) -> CostModel:
    """Random cost model with exactly-representable slot costs.

    Costs are multiples of 0.5 so every per-node float accumulation is
    exact and the engines' counter parity holds bit-for-bit (see the
    :mod:`repro.core.search` docstring).
    """
    roll = rng.random()
    if roll < 0.3:
        return maspar_cost_model(
            mask_overhead=float(rng.integers(0, 5)) / 2.0,
            require_equal_imm=bool(rng.random() < 0.5))
    if roll < 0.5:
        return uniform_cost_model(
            cost=float(rng.integers(1, 7)) / 2.0 + 0.5,
            mask_overhead=float(rng.integers(0, 3)) / 2.0)
    opcodes = sorted(region.opcodes())
    # Randomly alias some opcodes into shared classes (merge-class skew at
    # the model level: distinct opcodes that still merge).
    classes = [f"c{j}" for j in range(max(1, len(opcodes) // 2))]
    class_of = {
        op: classes[int(rng.integers(len(classes)))]
        for op in opcodes if rng.random() < 0.5
    }
    used_classes = set(class_of.values()) | {
        op for op in opcodes if op not in class_of}
    class_cost = {
        cls: float(rng.integers(1, 25)) / 2.0 + 0.5
        for cls in used_classes if rng.random() < 0.8
    }
    return CostModel(
        class_of=class_of,
        class_cost=class_cost,
        mask_overhead=float(rng.integers(0, 5)) / 2.0,
        default_cost=float(rng.integers(1, 7)) / 2.0 + 0.5,
        require_equal_imm=bool(rng.random() < 0.4),
    )


def _random_config(rng: np.random.Generator, region: Region,
                   spec: GeneratorSpec) -> SearchConfig:
    """Random search knobs inside the engines' agreement envelope."""
    small = region.num_ops <= spec.max_ops_exhaustive
    budget = int(rng.choice((64, 300, 1500, 6000)))
    return SearchConfig(
        node_budget=budget,
        maximal_merges_only=not (small and rng.random() < 0.3),
        branch_thread_choices=bool(small and rng.random() < 0.2),
        respect_order=bool(rng.random() < 0.15),
        use_cp_bound=bool(rng.random() >= 0.15),
        use_class_bound=bool(rng.random() >= 0.15),
        use_memo=bool(rng.random() >= 0.15),
        # Without the greedy incumbent the first DFS descent still reaches a
        # leaf within num_ops expansions, well inside every budget above.
        seed_with_greedy=bool(rng.random() >= 0.2),
    )


def _handler_case_region(rng: np.random.Generator,
                         spec: GeneratorSpec) -> tuple[Region, CostModel]:
    count = int(rng.integers(2, min(5, spec.max_threads) + 1))
    picks = rng.choice(len(HANDLER_MNEMONICS), size=count, replace=False)
    mnemonics = [HANDLER_MNEMONICS[int(i)] for i in picks]
    model = interpreter_micro_cost_model(
        mask_overhead=float(rng.integers(0, 3)) / 2.0)
    return interpreter_handler_region(mnemonics), model


# --- MIMDC program synthesis ----------------------------------------------

#: Kernel templates safe to run without extra global initialization.
_SAFE_KERNELS = ("axpy", "polynomial", "divergent", "staggered")

_INT_BINOPS = ("+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=",
               "&&", "||")


def _random_int_expr(rng: np.random.Generator, names: list[str],
                     depth: int) -> str:
    """Random int-typed MIMDC expression over ``names`` and small literals.

    Literals stay small and shift amounts bounded so optimized (folded,
    arbitrary-precision python ints) and unoptimized (64-bit interpreter
    arithmetic) evaluation cannot diverge through overflow — any remaining
    difference is a genuine folding bug.
    """
    roll = rng.random()
    if depth <= 0 or roll < 0.35:
        if names and rng.random() < 0.55:
            return names[int(rng.integers(len(names)))]
        if rng.random() < 0.15:
            return "this"
        return str(int(rng.integers(-8, 9)))
    if roll < 0.45:
        inner = _random_int_expr(rng, names, depth - 1)
        return f"(-({inner}))" if rng.random() < 0.5 else f"(!({inner}))"
    if roll < 0.55:
        inner = _random_int_expr(rng, names, depth - 1)
        shift = int(rng.integers(0, 7))
        op = "<<" if rng.random() < 0.5 else ">>"
        return f"(({inner}) {op} {shift})"
    op = _INT_BINOPS[int(rng.integers(len(_INT_BINOPS)))]
    left = _random_int_expr(rng, names, depth - 1)
    right = _random_int_expr(rng, names, depth - 1)
    return f"(({left}) {op} ({right}))"


def _random_program(rng: np.random.Generator) -> tuple[str, str]:
    """Random MIMDC source; returns (source, generator note)."""
    if rng.random() < 0.4:
        from repro.workloads.programs import kernel_source
        name = _SAFE_KERNELS[int(rng.integers(len(_SAFE_KERNELS)))]
        iters = int(rng.integers(2, 6))
        return kernel_source(name, iters=iters), f"kernel:{name}x{iters}"
    names: list[str] = []
    body: list[str] = []
    for name in ("a", "b", "c"):
        body.append(f"    int {name};")
    for name in ("a", "b", "c"):
        body.append(f"    {name} = {_random_int_expr(rng, names, 3)};")
        names.append(name)
    for _ in range(int(rng.integers(1, 4))):
        target = names[int(rng.integers(len(names)))]
        if rng.random() < 0.3:
            cond = _random_int_expr(rng, names, 2)
            then = _random_int_expr(rng, names, 2)
            body.append(f"    if ({cond}) {target} = {then};")
        else:
            body.append(f"    {target} = {_random_int_expr(rng, names, 3)};")
    body.append(f"    result = {_random_int_expr(rng, names, 2)};")
    body.append("    return result;")
    source = "int result;\nint main() {\n" + "\n".join(body) + "\n}\n"
    return source, "synth"


def generate_case(seed: int, index: int,
                  spec: GeneratorSpec | None = None) -> FuzzCase:
    """Deterministically generate case ``index`` of the run seeded ``seed``.

    The per-case stream is derived as ``derive_rng(seed, index)``, so any
    case reproduces from the root seed alone regardless of how many cases
    ran before it or how many draws each consumed.
    """
    spec = spec or GeneratorSpec()
    rng = derive_rng(seed, index)
    if rng.random() < spec.program_fraction:
        source, note = _random_program(rng)
        return FuzzCase(kind="program", seed=seed, index=index,
                        source=source, note=note)
    if rng.random() < spec.handler_fraction:
        region, model = _handler_case_region(rng, spec)
        note = "handlers"
    else:
        region = _random_region(rng, spec)
        model = _random_model(rng, region)
        note = "random"
    config = _random_config(rng, region, spec)
    return FuzzCase(kind="region", seed=seed, index=index, region=region,
                    model=model, config=config, note=note)
