"""Delta debugging for failing fuzz cases.

A fuzz failure on a 4-thread 24-op region is almost useless to a human; the
same failure on 2 threads × 3 ops is a unit test.  :func:`shrink_case`
greedily applies reduction passes — drop whole threads, drop contiguous op
chunks at halving granularity (classic ddmin), then simplify the surviving
ops (clear reads, clear immediates) — and keeps any candidate that still
fails the *same oracle* as the original case.  Requiring the same oracle
name matters: a reduced region that fails differently (or a reduced program
that merely stops compiling) is a different bug, and keeping it would shrink
toward the wrong minimum.

Program cases shrink by dropping source lines.

Everything is bounded by ``max_attempts`` oracle evaluations, so shrinking a
pathological case degrades to "returns the best reduction so far" rather
than hanging the fuzz run.
"""

from __future__ import annotations

import dataclasses

from repro.core.ops import Operation, Region, ThreadCode
from repro.fuzz.generators import FuzzCase
from repro.fuzz.oracles import OracleFailure, check_case

__all__ = ["shrink_case"]


def _rebuild_region(threads: list[list[Operation]]) -> Region:
    """Region from per-thread op lists, renumbering threads and indices."""
    return Region(tuple(
        ThreadCode(t, tuple(
            dataclasses.replace(op, thread=t, index=k)
            for k, op in enumerate(ops)))
        for t, ops in enumerate(threads)))


def _region_ops(region: Region) -> list[list[Operation]]:
    return [list(tc.ops) for tc in region.threads]


class _Budget:
    """Mutable attempt counter shared across reduction passes."""

    def __init__(self, attempts: int) -> None:
        self.left = attempts

    def spend(self) -> bool:
        if self.left <= 0:
            return False
        self.left -= 1
        return True


def _still_fails(case: FuzzCase, oracles: frozenset[str],
                 engines: tuple[str, ...], vn: bool) -> bool:
    # ``vn`` rides through every re-check so the vn oracle set stays fixed
    # while ddmin runs: a candidate only counts as "still failing" if it
    # fails the same oracle under the same oracle battery.
    return any(f.oracle in oracles
               for f in check_case(case, engines=engines, vn=vn))


def _shrink_region(case: FuzzCase, oracles: frozenset[str],
                   budget: _Budget, engines: tuple[str, ...],
                   vn: bool) -> FuzzCase:
    best = case

    def try_candidate(threads: list[list[Operation]]) -> FuzzCase | None:
        if not any(threads) or not budget.spend():
            return None
        candidate = dataclasses.replace(
            best, region=_rebuild_region([ops for ops in threads if ops]))
        return candidate if _still_fails(candidate, oracles, engines, vn) \
            else None

    progress = True
    while progress and budget.left > 0:
        progress = False

        # Pass 1: drop whole threads.
        threads = _region_ops(best.region)
        t = 0
        while len(threads) > 1 and t < len(threads):
            candidate = try_candidate(threads[:t] + threads[t + 1:])
            if candidate is not None:
                best = candidate
                threads = _region_ops(best.region)
                progress = True
            else:
                t += 1

        # Pass 2: ddmin over each thread's ops at halving chunk sizes.
        # Emptying a thread drops it (and renumbers the rest), so bounds are
        # re-checked against the current best region every step.
        for t in range(best.region.num_threads):
            if t >= best.region.num_threads:
                break
            chunk = max(1, len(_region_ops(best.region)[t]) // 2)
            while chunk >= 1 and t < best.region.num_threads:
                ops = _region_ops(best.region)[t]
                start = 0
                while start < len(ops):
                    threads = _region_ops(best.region)
                    trimmed = ops[:start] + ops[start + chunk:]
                    threads[t] = trimmed
                    candidate = try_candidate(threads)
                    if candidate is not None:
                        best = candidate
                        progress = True
                        if not trimmed or t >= best.region.num_threads:
                            ops = []
                            break
                        ops = _region_ops(best.region)[t]
                    else:
                        start += chunk
                chunk //= 2

        # Pass 3: simplify surviving ops (drop reads, then immediates).
        for simplify in (lambda op: dataclasses.replace(op, reads=()),
                         lambda op: dataclasses.replace(op, imm=None)):
            threads = _region_ops(best.region)
            for t, ops in enumerate(threads):
                for k, op in enumerate(ops):
                    simplified = simplify(op)
                    if simplified == op:
                        continue
                    candidate_threads = _region_ops(best.region)
                    candidate_threads[t][k] = simplified
                    candidate = try_candidate(candidate_threads)
                    if candidate is not None:
                        best = candidate
                        progress = True

    return best


def _shrink_program(case: FuzzCase, oracles: frozenset[str],
                    budget: _Budget, engines: tuple[str, ...],
                    vn: bool) -> FuzzCase:
    best = case
    progress = True
    while progress and budget.left > 0:
        progress = False
        lines = best.source.splitlines()
        chunk = max(1, len(lines) // 2)
        while chunk >= 1 and budget.left > 0:
            start = 0
            while start < len(lines):
                if not budget.spend():
                    return best
                trimmed = lines[:start] + lines[start + chunk:]
                candidate = dataclasses.replace(best, source="\n".join(trimmed) + "\n")
                if trimmed and _still_fails(candidate, oracles, engines, vn):
                    best = candidate
                    lines = trimmed
                    progress = True
                else:
                    start += chunk
            chunk //= 2
    return best


def shrink_case(case: FuzzCase, failing: list[OracleFailure],
                max_attempts: int = 400,
                engines: tuple[str, ...] = ("bitmask", "legacy", "array"),
                vn: bool = False) -> FuzzCase:
    """Reduce ``case`` while it keeps failing one of ``failing``'s oracles.

    Returns the smallest case found (possibly ``case`` itself), with
    ``shrunk_from_ops`` recording the original size so reports can show
    the reduction.  ``vn`` must match the flag the failure was found under
    — it pins the oracle battery (the vn differential block included) for
    every candidate re-check, so a ``vn_*`` failure shrinks toward the
    smallest region that still breaks the value-numbering pass.
    """
    if not failing:
        return case
    oracles = frozenset(f.oracle for f in failing)
    budget = _Budget(max_attempts)
    if case.kind == "program":
        shrunk = _shrink_program(case, oracles, budget, tuple(engines), vn)
    else:
        shrunk = _shrink_region(case, oracles, budget, tuple(engines), vn)
    if shrunk is case:
        return case
    return dataclasses.replace(shrunk, shrunk_from_ops=case.num_ops or None,
                               note=f"{case.note}+shrunk")
