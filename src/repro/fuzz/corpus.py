"""The persistent regression corpus: fuzz findings as JSON files.

Every failing case the runner sees is written under ``tests/corpus/`` as one
self-contained JSON file — the (shrunk) region text or program source, the
cost model and search config, the oracle failures observed, and the exact
``repro fuzz`` command line that regenerates the original case from its
root seed.  A tier-1 test (``tests/fuzz/test_corpus_replay.py``) replays the
whole directory on every run, so a fuzz-found bug that gets fixed can never
silently come back.

The file format is versioned and deliberately human-triageable: ``region``
is the textual syntax from :func:`repro.core.ops.Region.render`, not an
opaque pickle, so a corpus entry can be read, edited and minimized by hand.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.core.costmodel import CostModel
from repro.core.ops import parse_region
from repro.core.search import SearchConfig
from repro.fuzz.generators import FuzzCase
from repro.fuzz.oracles import OracleFailure
from repro.service.protocol import model_from_payload, model_to_payload

__all__ = ["case_from_payload", "case_to_payload", "entry_needs_vn",
           "load_corpus", "save_failure"]

#: Bumped when the payload shape changes incompatibly.
CORPUS_VERSION = 1


def case_to_payload(case: FuzzCase) -> dict[str, Any]:
    """JSON-able form of a case (inverse of :func:`case_from_payload`)."""
    payload: dict[str, Any] = {
        "version": CORPUS_VERSION,
        "kind": case.kind,
        "seed": case.seed,
        "index": case.index,
        "note": case.note,
    }
    if case.kind == "region":
        payload["region"] = case.region.render()
        payload["model"] = model_to_payload(case.model)
        payload["config"] = dataclasses.asdict(case.config)
    else:
        payload["source"] = case.source
    if case.shrunk_from_ops is not None:
        payload["shrunk_from_ops"] = case.shrunk_from_ops
    return payload


def case_from_payload(payload: Mapping[str, Any]) -> FuzzCase:
    """Rebuild a :class:`FuzzCase` from :func:`case_to_payload` output."""
    version = int(payload.get("version", 0))
    if version != CORPUS_VERSION:
        raise ValueError(f"unsupported corpus payload version {version}")
    kind = payload["kind"]
    common = dict(
        kind=kind,
        seed=int(payload.get("seed", 0)),
        index=int(payload.get("index", 0)),
        note=str(payload.get("note", "corpus")),
        shrunk_from_ops=payload.get("shrunk_from_ops"),
    )
    if kind == "program":
        return FuzzCase(source=payload["source"], **common)
    model = model_from_payload(payload["model"])
    if not isinstance(model, CostModel):
        raise ValueError(f"corpus model must be explicit, got {model!r}")
    return FuzzCase(
        region=parse_region(payload["region"]),
        model=model,
        config=SearchConfig(**payload["config"]),
        **common,
    )


def _entry_name(case: FuzzCase, blob: str) -> str:
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:8]
    return f"fuzz-{case.seed}-{case.index}-{digest}.json"


def save_failure(corpus_dir: str | os.PathLike, case: FuzzCase,
                 failures: Iterable[OracleFailure],
                 shrunk: FuzzCase | None = None) -> Path:
    """Persist a failing case (and its shrunk form) as one corpus file.

    Returns the path written.  The write is atomic (tmp file + replace) so
    a killed fuzz run never leaves a truncated corpus entry behind.
    """
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    minimal = shrunk if shrunk is not None else case
    payload: dict[str, Any] = {
        "version": CORPUS_VERSION,
        "case": case_to_payload(minimal),
        "failures": [{"oracle": f.oracle, "detail": f.detail} for f in failures],
        "reproduce": f"repro fuzz --seed {case.seed} --cases {case.index + 1}",
    }
    if shrunk is not None and shrunk is not case:
        payload["original"] = case_to_payload(case)
    blob = json.dumps(payload, indent=2, sort_keys=True)
    path = corpus_dir / _entry_name(case, blob)
    tmp = path.with_suffix(".tmp")
    tmp.write_text(blob + "\n", encoding="utf-8")
    os.replace(tmp, path)
    return path


def entry_needs_vn(path: str | os.PathLike) -> bool:
    """True when a corpus entry was found by the vn differential oracle.

    Replays consult this so an entry recorded under ``--vn`` is re-checked
    with the same oracle battery it originally failed — without forcing
    the (more expensive) vn block onto every pre-vn corpus entry.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return False
    return any(str(f.get("oracle", "")).startswith("vn_")
               for f in payload.get("failures", ()))


def load_corpus(corpus_dir: str | os.PathLike) -> list[tuple[Path, FuzzCase]]:
    """Load every corpus entry, sorted by file name for deterministic replay.

    A malformed entry raises — a corrupt corpus should fail the replay test
    loudly, not shrink it quietly.
    """
    corpus_dir = Path(corpus_dir)
    if not corpus_dir.is_dir():
        return []
    entries: list[tuple[Path, FuzzCase]] = []
    for path in sorted(corpus_dir.glob("*.json")):
        payload = json.loads(path.read_text(encoding="utf-8"))
        entries.append((path, case_from_payload(payload["case"])))
    return entries
