"""Differential oracles: every way a generated case can prove a bug.

A *region* case is pushed through every search engine and a battery of
independent checks, each of which holds for **any** correct implementation:

- **engine parity** — ``bitmask``, ``legacy`` and ``array`` must return the
  identical slot sequence, cost, and every pruning counter (the repo's core
  contract, see :mod:`repro.core.search`);
- **validity** — every schedule passes :func:`repro.core.verify.verify_schedule`,
  the from-first-principles checker;
- **cost recomputation** — ``stats.best_cost`` equals the schedule's cost
  recomputed slot-by-slot from the model;
- **bounds** — search ≤ greedy (when seeded or proven optimal) and every
  schedule ≤ the serialized-MIMD baseline; merging can only remove slots,
  so a violation means a cost or search bug, not a modeling choice;
- **round-trips** — region text render/parse, fingerprint determinism,
  cache put/get (memory and, given a ``workdir``, the disk tier), and the
  result wire payload must all reproduce their input exactly;
- **windowed stitching** — the windowed pipeline's stitched schedule must
  be valid for the *full* region's dependence DAGs.

A *program* case is compiled with folding on and off and interpreted both
ways; all global memory must match (:mod:`repro.lang.fold` may only change
the instruction stream, never the answer).

Failures come back as :class:`OracleFailure` records — the oracle name is
stable so the shrinker can insist a reduced case still fails the *same*
check.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.cache import ScheduleCache, region_fingerprint, schedule_to_payload
from repro.core.dag import build_dags
from repro.core.greedy import greedy_schedule
from repro.core.ops import parse_region
from repro.core.pipeline import InductionResult
from repro.core.result import result_from_payload, result_to_payload
from repro.core.search import branch_and_bound
from repro.core.serial import lockstep_schedule, serial_schedule
from repro.core.canon import regions_mismatch
from repro.core.verify import ScheduleError, verify_schedule
from repro.core.vn import rewrite_region, serial_issue_cost
from repro.core.window import _windowed_induce_impl
from repro.fuzz.generators import FuzzCase
from repro.util.rng import resolve_seed

__all__ = ["OracleFailure", "check_case"]

_EPS = 1e-9

#: SearchStats fields the engines must agree on exactly (wall time and the
#: engine tag legitimately differ).
_PARITY_COUNTERS = (
    "nodes_expanded", "children_generated", "pruned_by_bound",
    "pruned_by_memo", "best_cost", "incumbent_updates", "optimal",
    "budget_exhausted",
)


@dataclass(frozen=True)
class OracleFailure:
    """One oracle disagreement: which check failed and the evidence."""

    oracle: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.detail}"


def _slots_payload(schedule) -> list:
    return schedule_to_payload(schedule)


def _check_engine_parity(case: FuzzCase, dags,
                         engines: tuple[str, ...]) -> tuple[list[OracleFailure], dict]:
    """Run the requested engines; return failures plus (schedule, stats) each."""
    failures: list[OracleFailure] = []
    runs: dict[str, tuple] = {}
    for engine in engines:
        cfg = dataclasses.replace(case.config, engine=engine)
        schedule, stats = branch_and_bound(case.region, case.model, cfg, dags=dags)
        runs[engine] = (schedule, stats)

    if len(engines) < 2:
        return failures, runs
    ref = engines[0]
    ref_sched, ref_stats = runs[ref]
    for other in engines[1:]:
        o_sched, o_stats = runs[other]
        if _slots_payload(ref_sched) != _slots_payload(o_sched):
            failures.append(OracleFailure(
                "engine_schedule",
                f"{ref}={_slots_payload(ref_sched)} {other}={_slots_payload(o_sched)}"))
        for name in _PARITY_COUNTERS:
            rv, ov = getattr(ref_stats, name), getattr(o_stats, name)
            if rv != ov:
                failures.append(OracleFailure(
                    "engine_counters", f"{name}: {ref}={rv!r} {other}={ov!r}"))
    return failures, runs


def _check_region(case: FuzzCase, workdir: Path | None,
                  engines: tuple[str, ...]) -> list[OracleFailure]:
    region, model, config = case.region, case.model, case.config
    dags = build_dags(region, respect_order=config.respect_order)

    failures, runs = _check_engine_parity(case, dags, engines)
    schedule, stats = runs[engines[0]]

    # Independent validity check, for both engines' schedules.
    for engine, (sched, _) in runs.items():
        try:
            verify_schedule(sched, region, model, dags=dags,
                            respect_order=config.respect_order)
        except ScheduleError as exc:
            failures.append(OracleFailure(f"verify:{engine}", str(exc)))

    # Cost recomputation: the reported best cost is the schedule's cost.
    for engine, (sched, st) in runs.items():
        recomputed = sched.cost(model)
        if abs(recomputed - st.best_cost) > _EPS:
            failures.append(OracleFailure(
                f"cost_recompute:{engine}",
                f"stats.best_cost={st.best_cost!r} recomputed={recomputed!r}"))

    # Upper bounds.  Slot cost includes masking for every slot, so merging
    # strictly removes cost: any leaf ≤ serial, and greedy ≤ serial too.
    greedy = greedy_schedule(region, model, dags=dags)
    serial = serial_schedule(region, model)
    greedy_cost = greedy.cost(model)
    serial_cost = serial.cost(model)
    if greedy_cost > serial_cost + _EPS:
        failures.append(OracleFailure(
            "bound_greedy_serial", f"greedy={greedy_cost!r} > serial={serial_cost!r}"))
    if stats.best_cost > serial_cost + _EPS:
        failures.append(OracleFailure(
            "bound_search_serial",
            f"search={stats.best_cost!r} > serial={serial_cost!r}"))
    if (config.seed_with_greedy or stats.optimal) and \
            stats.best_cost > greedy_cost + _EPS:
        failures.append(OracleFailure(
            "bound_search_greedy",
            f"search={stats.best_cost!r} > greedy={greedy_cost!r} "
            f"(seeded={config.seed_with_greedy}, optimal={stats.optimal})"))

    # Region text round-trip + fingerprint determinism.
    fingerprint = region_fingerprint(region, model, config)
    try:
        reparsed = parse_region(region.render())
    except Exception as exc:
        failures.append(OracleFailure("region_roundtrip", f"parse failed: {exc}"))
    else:
        if reparsed != region:
            failures.append(OracleFailure(
                "region_roundtrip", "parse(render()) != region"))
        elif region_fingerprint(reparsed, model, config) != fingerprint:
            failures.append(OracleFailure(
                "fingerprint", "re-parsed region fingerprints differently"))

    # Cache round-trip: memory tier always, disk tier when given a workdir.
    cache_dir = (workdir / "cache") if workdir is not None else None
    cache = ScheduleCache(capacity=4, cache_dir=cache_dir)
    cache.put(fingerprint, schedule, stats)
    hit = cache.get(fingerprint)
    if hit is None:
        failures.append(OracleFailure("cache_roundtrip", "put then get missed"))
    else:
        cached_sched, cached_stats = hit
        if _slots_payload(cached_sched) != _slots_payload(schedule):
            failures.append(OracleFailure(
                "cache_roundtrip", "cached schedule differs from stored"))
        if cached_stats is None or \
                dataclasses.asdict(cached_stats) != dataclasses.asdict(stats):
            failures.append(OracleFailure(
                "cache_roundtrip", "cached stats differ from stored"))
    if cache_dir is not None:
        disk_hit = ScheduleCache(capacity=4, cache_dir=cache_dir).get(fingerprint)
        if disk_hit is None or \
                _slots_payload(disk_hit[0]) != _slots_payload(schedule):
            failures.append(OracleFailure(
                "cache_disk_roundtrip", "disk tier lost or changed the schedule"))

    # Result wire round-trip: payload → JSON text → payload must be a
    # fixed point (modulo the kind discriminator, which becomes "service").
    result = InductionResult(
        method="search", schedule=schedule, cost=stats.best_cost,
        serial_cost=serial_cost, lockstep_cost=lockstep_schedule(region, model).cost(model),
        stats=stats, wall_s=stats.wall_s)
    payload = result_to_payload(result)
    rebuilt = result_from_payload(json.loads(json.dumps(payload, sort_keys=True)))
    payload2 = result_to_payload(rebuilt)
    a = {k: v for k, v in payload.items() if k != "kind"}
    b = {k: v for k, v in payload2.items() if k != "kind"}
    if a != b:
        diff = {k for k in set(a) | set(b) if a.get(k) != b.get(k)}
        failures.append(OracleFailure(
            "wire_roundtrip", f"payload changed through the wire: {sorted(diff)}"))

    # Windowed stitching: the stitched schedule must be valid against the
    # FULL region's DAGs (no cost claim — windowing restricts the space).
    if region.num_ops >= 2:
        windowed = _windowed_induce_impl(region, model, window_size=4,
                                         config=config)
        try:
            verify_schedule(windowed.schedule, region, model, dags=dags,
                            respect_order=config.respect_order)
        except ScheduleError as exc:
            failures.append(OracleFailure("windowed_valid", str(exc)))
        recomputed = windowed.schedule.cost(model)
        if abs(recomputed - windowed.cost) > _EPS:
            failures.append(OracleFailure(
                "windowed_cost",
                f"windowed.cost={windowed.cost!r} recomputed={recomputed!r}"))

    return failures


def _check_vn(case: FuzzCase,
              engines: tuple[str, ...]) -> list[OracleFailure]:
    """The vn-on/vn-off differential: rewriting must be invisible but free.

    - ``vn_equivalence`` — the rewritten region computes identical values
      op-for-op under the canonical probe assignments *plus* extra
      ``$REPRO_SEED``-derived assignments (semantics preserved);
    - ``vn_idempotent`` — rewriting a rewritten region is a no-op;
    - ``vn_serial_bound`` — per-op slot costs never rise (the pass's
      hard never-worse guarantee, which holds unconditionally);
    - ``vn_engine_*`` / ``vn_verify:*`` — the engines stay bit-identical
      on the rewritten region and every schedule of it verifies;
    - ``vn_cost`` — end-to-end search cost with vn ≤ without, asserted
      only when *both* searches prove optimality under a common
      comparison config (budget-exhausted incumbents can legitimately
      order either way).
    """
    failures: list[OracleFailure] = []
    region, model = case.region, case.model
    rewritten, rewrites = rewrite_region(region, model)

    detail = regions_mismatch(region, rewritten, seed=resolve_seed(default=0))
    if detail is not None:
        # Semantics broke; downstream vn comparisons would only add noise.
        return [OracleFailure("vn_equivalence", detail)]

    again, _ = rewrite_region(rewritten, model)
    if again.render() != rewritten.render():
        failures.append(OracleFailure(
            "vn_idempotent", "vn(vn(region)) != vn(region)"))

    serial_off = serial_issue_cost(region, model)
    serial_vn = serial_issue_cost(rewritten, model)
    if serial_vn > serial_off + _EPS:
        failures.append(OracleFailure(
            "vn_serial_bound",
            f"serial issue cost rose {serial_off!r} -> {serial_vn!r}"))

    vncase = dataclasses.replace(case, region=rewritten)
    dags = build_dags(rewritten, respect_order=case.config.respect_order)
    parity, runs = _check_engine_parity(vncase, dags, engines)
    failures.extend(OracleFailure(f"vn_{f.oracle}", f.detail) for f in parity)
    for engine, (sched, _st) in runs.items():
        try:
            verify_schedule(sched, rewritten, model, dags=dags,
                            respect_order=case.config.respect_order)
        except ScheduleError as exc:
            failures.append(OracleFailure(f"vn_verify:{engine}", str(exc)))

    if rewrites:
        comparison = dataclasses.replace(
            case.config, engine=engines[0], node_budget=50_000,
            seed_with_greedy=True)
        _s_off, st_off = branch_and_bound(region, model, comparison)
        _s_vn, st_vn = branch_and_bound(rewritten, model, comparison)
        if st_off.optimal and st_vn.optimal and \
                st_vn.best_cost > st_off.best_cost + _EPS:
            failures.append(OracleFailure(
                "vn_cost",
                f"optimal cost rose under vn: off={st_off.best_cost!r} "
                f"vn={st_vn.best_cost!r} ({rewrites} rewrites)"))
    return failures


def _check_cluster(case: FuzzCase, cluster,
                   engines: tuple[str, ...]) -> list[OracleFailure]:
    """Cluster round-trip: route → induce must equal a local single run.

    The whole routed path — fingerprint routing, forwarding, the node's
    batcher/worker/cache, the replica push — must be invisible to the
    caller: same slots, same cost, never degraded.  ``cluster`` is a live
    :class:`repro.cluster.LocalCluster` owned by the run loop.
    """
    from repro.api import InductionRequest

    failures: list[OracleFailure] = []
    cfg = dataclasses.replace(case.config, engine=engines[0])
    schedule, stats = branch_and_bound(case.region, case.model, cfg)
    request = InductionRequest(region=case.region, model=case.model,
                               config=cfg)
    try:
        result = cluster.client().submit(request)
    except Exception as exc:  # noqa: BLE001 - any transport blowup is a bug
        return [OracleFailure("cluster_roundtrip",
                              f"routed submit failed: {exc!r}")]
    if result.degraded:
        failures.append(OracleFailure(
            "cluster_roundtrip", "routed result came back degraded with no "
            "deadline set"))
    if _slots_payload(result.schedule) != _slots_payload(schedule):
        failures.append(OracleFailure(
            "cluster_roundtrip",
            f"routed={_slots_payload(result.schedule)} "
            f"local={_slots_payload(schedule)} "
            f"(node={result.extras.get('routed_node')})"))
    elif abs(result.cost - stats.best_cost) > _EPS:
        failures.append(OracleFailure(
            "cluster_roundtrip",
            f"routed cost={result.cost!r} local={stats.best_cost!r}"))
    return failures


def _check_program(case: FuzzCase) -> list[OracleFailure]:
    """Folding on vs off must agree on every global after execution."""
    from repro.interp import MIMDInterpreter
    from repro.lang import compile_mimdc

    failures: list[OracleFailure] = []
    units = {}
    for optimize in (True, False):
        units[optimize] = compile_mimdc(case.source, optimize=optimize)

    for optimize, unit in units.items():
        for opcode, count in unit.counts.items():
            if not (count >= 0.0 and np.isfinite(count)):
                failures.append(OracleFailure(
                    "counts_sane",
                    f"optimize={optimize}: count[{opcode}]={count!r}"))

    interps = {}
    for optimize, unit in units.items():
        interp = MIMDInterpreter(unit.program, 4, layout=unit.layout)
        interp.run()
        interps[optimize] = interp

    for name, addr in units[True].globals_map.items():
        folded = interps[True].peek_global(addr)
        plain = interps[False].peek_global(units[False].globals_map[name])
        if not np.array_equal(folded, plain):
            failures.append(OracleFailure(
                "fold_differential",
                f"global {name!r}: folded={list(folded)} plain={list(plain)}"))
    return failures


def check_case(case: FuzzCase, workdir: Path | None = None,
               engines: tuple[str, ...] = ("bitmask", "legacy", "array"),
               cluster=None, vn: bool = False) -> list[OracleFailure]:
    """Run every applicable oracle; an empty list means the case passed.

    ``engines`` picks the search implementations a region case runs through;
    cross-engine parity is only asserted when more than one is given.
    ``cluster`` (a live :class:`repro.cluster.LocalCluster`) additionally
    routes the region through the cluster front door and insists the routed
    result equals the local one.  ``vn=True`` adds the value-numbering
    differential block (:func:`_check_vn`) to region cases.  Any exception
    inside an oracle is itself a failure (generated inputs must never crash
    the stack) and is reported as ``exception:<Type>``.
    """
    if not engines:
        raise ValueError("need at least one engine")
    try:
        if case.kind == "program":
            return _check_program(case)
        failures = _check_region(case, workdir, tuple(engines))
        if vn:
            failures.extend(_check_vn(case, tuple(engines)))
        if cluster is not None:
            failures.extend(_check_cluster(case, cluster, tuple(engines)))
        return failures
    except Exception as exc:
        return [OracleFailure(f"exception:{type(exc).__name__}", repr(exc))]
