"""The fuzz run loop behind ``repro fuzz``.

One run is: resolve the root seed (flag > ``$REPRO_SEED`` > entropy), then
for each index generate the case deterministically, run every oracle, and —
on disagreement — shrink the case and persist it to the corpus.  The loop is
double-bounded by case count and wall-clock budget, emits one ``fuzz.case``
span per case plus ``fuzz_*`` metrics (so throughput shows up in ``repro
stats`` next to the schedulers it exercises), and finishes with an aggregate
``fuzz`` event carrying the reproduce line.

Everything observable about the run is in the returned :class:`FuzzReport`;
the CLI only formats it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro.fuzz.corpus import save_failure
from repro.fuzz.generators import FuzzCase, GeneratorSpec, generate_case
from repro.fuzz.oracles import OracleFailure, check_case
from repro.fuzz.shrink import shrink_case
from repro.obs import NULL_TRACER, Tracer, get_registry, span
from repro.util.rng import resolve_seed

__all__ = ["FuzzConfig", "FuzzFailure", "FuzzReport", "fuzz_run"]


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzz run's knobs (mirrors the ``repro fuzz`` flags)."""

    seed: int | None = None
    cases: int = 200
    max_ops: int = 24
    max_threads: int = 4
    #: Wall-clock budget in seconds; ``None`` means run all ``cases``.
    time_budget_s: float | None = None
    #: Search engines region cases run through; parity needs at least two.
    engines: tuple[str, ...] = ("bitmask", "legacy", "array")
    program_fraction: float = 0.15
    shrink: bool = True
    shrink_attempts: int = 400
    #: Where failing cases are persisted; ``None`` disables persistence.
    corpus_dir: str | None = None
    fail_fast: bool = False
    #: Scratch directory for the disk-cache oracle; ``None`` skips that tier.
    workdir: str | None = None
    #: Fraction of region cases additionally routed through an in-process
    #: 3-node cluster and compared against the local result (the
    #: ``cluster_roundtrip`` oracle).  0 disables the cluster entirely.
    cluster_fraction: float = 0.0
    #: Enable the value-numbering differential oracle block and bias the
    #: generator toward cross-thread redundancy (the inputs vn rewrites).
    vn: bool = False

    def __post_init__(self) -> None:
        if self.cases < 1:
            raise ValueError(f"need at least one case, got {self.cases}")
        if self.time_budget_s is not None and self.time_budget_s <= 0:
            raise ValueError(f"bad time budget {self.time_budget_s}")
        if not self.engines:
            raise ValueError("need at least one engine")
        if not 0.0 <= self.cluster_fraction <= 1.0:
            raise ValueError(
                f"cluster fraction must be in [0, 1], got "
                f"{self.cluster_fraction}")


@dataclass(frozen=True)
class FuzzFailure:
    """One failing case: what was generated, what disagreed, the minimum."""

    case: FuzzCase
    failures: tuple[OracleFailure, ...]
    shrunk: FuzzCase | None = None

    @property
    def minimal(self) -> FuzzCase:
        return self.shrunk if self.shrunk is not None else self.case

    def summary(self) -> str:
        oracles = sorted({f.oracle for f in self.failures})
        size = ""
        if self.shrunk is not None and self.shrunk.kind == "region":
            size = f" (shrunk {self.case.num_ops} -> {self.shrunk.num_ops} ops)"
        return (f"case {self.case.index} [{self.case.describe()}] failed "
                f"{', '.join(oracles)}{size}")


@dataclass(frozen=True)
class FuzzReport:
    """Aggregate outcome of one fuzz run."""

    seed: int
    cases_run: int = 0
    region_cases: int = 0
    program_cases: int = 0
    failures: tuple[FuzzFailure, ...] = ()
    wall_s: float = 0.0
    #: "cases", "time_budget" or "fail_fast" — why the loop stopped.
    stopped_by: str = "cases"
    corpus_paths: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.failures

    def reproduce_line(self) -> str:
        return f"repro fuzz --seed {self.seed} --cases {self.cases_run}"


def fuzz_run(config: FuzzConfig | None = None,
             tracer: Tracer | None = None) -> FuzzReport:
    """Run the differential fuzz loop; never raises on oracle failure.

    Oracle disagreements are collected (shrunk, persisted) and reported via
    :class:`FuzzReport`; only misconfiguration raises.
    """
    config = config or FuzzConfig()
    tracer = tracer or NULL_TRACER
    registry = get_registry()
    seed = resolve_seed(config.seed)
    spec = GeneratorSpec(
        max_threads=config.max_threads,
        max_ops=config.max_ops,
        program_fraction=config.program_fraction,
        redundancy=0.35 if config.vn else 0.0,
    )
    workdir = Path(config.workdir) if config.workdir else None

    started = time.perf_counter()
    cases_run = region_cases = program_cases = 0
    failures: list[FuzzFailure] = []
    corpus_paths: list[str] = []
    stopped_by = "cases"
    # The cluster oracle's 3-node LocalCluster boots lazily on the first
    # case that wants it and is shared by the whole run.
    cluster = None
    cluster_every = 0 if config.cluster_fraction <= 0 \
        else max(1, round(1 / config.cluster_fraction))

    try:
        for index in range(config.cases):
            elapsed = time.perf_counter() - started
            if config.time_budget_s is not None and \
                    elapsed >= config.time_budget_s:
                stopped_by = "time_budget"
                break
            case = generate_case(seed, index, spec)
            route_through_cluster = (cluster_every and case.kind == "region"
                                     and index % cluster_every == 0)
            if route_through_cluster and cluster is None:
                from repro.cluster import LocalCluster
                cluster = LocalCluster(nodes=3, cache_capacity=32)
            case_start = time.perf_counter()
            with span("fuzz.case", tracer, index=index, case_kind=case.kind,
                      note=case.note, ops=case.num_ops):
                found = check_case(
                    case, workdir=workdir, engines=config.engines,
                    cluster=cluster if route_through_cluster else None,
                    vn=config.vn)
            registry.inc("fuzz_cases_total")
            registry.observe("fuzz_case_seconds",
                             time.perf_counter() - case_start)
            cases_run += 1
            if case.kind == "program":
                program_cases += 1
            else:
                region_cases += 1

            if found:
                registry.inc("fuzz_failures_total")
                shrunk = None
                if config.shrink:
                    shrunk = shrink_case(case, found,
                                         max_attempts=config.shrink_attempts,
                                         engines=config.engines,
                                         vn=config.vn)
                    if shrunk is case:
                        shrunk = None
                failure = FuzzFailure(case=case, failures=tuple(found),
                                      shrunk=shrunk)
                failures.append(failure)
                tracer.emit(
                    "fuzz_failure", index=index, case_kind=case.kind,
                    oracles=sorted({f.oracle for f in found}),
                    reproduce=f"repro fuzz --seed {seed} --cases {index + 1}")
                if config.corpus_dir:
                    path = save_failure(config.corpus_dir, case, found,
                                        shrunk=shrunk)
                    corpus_paths.append(str(path))
                if config.fail_fast:
                    stopped_by = "fail_fast"
                    break
    finally:
        if cluster is not None:
            cluster.shutdown()

    wall_s = time.perf_counter() - started
    report = FuzzReport(
        seed=seed, cases_run=cases_run, region_cases=region_cases,
        program_cases=program_cases, failures=tuple(failures), wall_s=wall_s,
        stopped_by=stopped_by, corpus_paths=tuple(corpus_paths))
    tracer.emit("fuzz", seed=seed, cases=cases_run,
                region_cases=region_cases, program_cases=program_cases,
                failures=len(failures), wall_s=round(wall_s, 6),
                stopped_by=stopped_by, reproduce=report.reproduce_line())
    return report
