"""Differential fuzzing and invariant verification for the induction stack.

The schedulers are pruned-search code — exactly where a subtle bug yields an
*invalid but cheap* schedule that looks like a great CSI result (see
:mod:`repro.core.verify`).  Hand-written tests cover the scenarios someone
imagined; this package generates the rest:

- :mod:`repro.fuzz.generators` — seeded random regions (threads, ops,
  dependence density, merge-class skew, immediates), random cost models and
  search configurations, random interpreter-handler subsets, and random
  MIMDC programs built on :mod:`repro.workloads.programs` templates;
- :mod:`repro.fuzz.oracles` — the differential harness: every case runs
  through every search engine (bitmask, legacy, array), the independent
  verifier, a
  cost-model recomputation, the greedy/serial upper bounds, a cache
  round-trip and the wire/`as_dict` round-trip; any disagreement is a bug;
- :mod:`repro.fuzz.shrink` — delta debugging that reduces a failing case
  to a minimal region before it is reported;
- :mod:`repro.fuzz.corpus` — failing cases persist as JSON (one file per
  case) and are deterministically replayed by a tier-1 test, so every
  fuzz-found bug becomes a permanent regression test;
- :mod:`repro.fuzz.runner` — the ``repro fuzz`` engine: seeded case loop,
  time budget, obs spans/metrics, corpus persistence.

Everything is reproducible bit-for-bit from the single root seed printed on
the first line of every run (``repro fuzz --seed N``).
"""

from repro.fuzz.corpus import (
    case_from_payload,
    case_to_payload,
    entry_needs_vn,
    load_corpus,
    save_failure,
)
from repro.fuzz.generators import FuzzCase, GeneratorSpec, generate_case
from repro.fuzz.oracles import OracleFailure, check_case
from repro.fuzz.runner import FuzzConfig, FuzzFailure, FuzzReport, fuzz_run
from repro.fuzz.shrink import shrink_case

__all__ = [
    "FuzzCase",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzReport",
    "GeneratorSpec",
    "OracleFailure",
    "case_from_payload",
    "case_to_payload",
    "check_case",
    "entry_needs_vn",
    "fuzz_run",
    "generate_case",
    "load_corpus",
    "save_failure",
    "shrink_case",
]
