"""repro — reproduction of "Common Subexpression Induction" (Dietz, ICPP 1992).

Core: :mod:`repro.core` (the CSI optimization).  Substrates: MIMD stack ISA
(:mod:`repro.isa`), MIMDC mini-language (:mod:`repro.lang`), SIMD machine
simulator (:mod:`repro.simd`), MIMD-on-SIMD interpreter (:mod:`repro.interp`),
discrete-event UNIX execution models (:mod:`repro.models`), and the AHS-style
heterogeneous target-selection scheduler (:mod:`repro.sched`).
"""

from repro.ahs import AhsReport, run_ahs
from repro.core import (
    CostModel,
    InductionResult,
    Operation,
    Region,
    Schedule,
    ThreadCode,
    induce,
    maspar_cost_model,
    parse_region,
    uniform_cost_model,
    verify_schedule,
)

__version__ = "1.0.0"

__all__ = [
    "AhsReport",
    "CostModel",
    "InductionResult",
    "Operation",
    "Region",
    "Schedule",
    "ThreadCode",
    "__version__",
    "induce",
    "maspar_cost_model",
    "parse_region",
    "run_ahs",
    "uniform_cost_model",
    "verify_schedule",
]
