"""repro — reproduction of "Common Subexpression Induction" (Dietz, ICPP 1992).

Core: :mod:`repro.core` (the CSI optimization).  Substrates: MIMD stack ISA
(:mod:`repro.isa`), MIMDC mini-language (:mod:`repro.lang`), SIMD machine
simulator (:mod:`repro.simd`), MIMD-on-SIMD interpreter (:mod:`repro.interp`),
discrete-event UNIX execution models (:mod:`repro.models`), and the AHS-style
heterogeneous target-selection scheduler (:mod:`repro.sched`).
"""

from repro.core import (
    CostModel,
    InductionResult,
    Operation,
    Region,
    Schedule,
    ThreadCode,
    induce,
    maspar_cost_model,
    parse_region,
    uniform_cost_model,
    verify_schedule,
)

__version__ = "1.0.0"


def __getattr__(name: str):
    # Lazy so that `import repro` (and the whole CSI core) works without
    # numpy; the AHS pipeline pulls in the interpreter stack, which needs
    # the [fast] extra.
    if name in ("AhsReport", "run_ahs"):
        from repro import ahs

        return getattr(ahs, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AhsReport",
    "CostModel",
    "InductionResult",
    "Operation",
    "Region",
    "Schedule",
    "ThreadCode",
    "__version__",
    "induce",
    "maspar_cost_model",
    "parse_region",
    "run_ahs",
    "uniform_cost_model",
    "verify_schedule",
]
