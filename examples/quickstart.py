#!/usr/bin/env python3
"""Quickstart: Common Subexpression Induction in five minutes.

Two MIMD threads run different code on a SIMD machine.  Without induction
the machine serializes them (sum of both threads); CSI finds the shared
instruction slots and schedules them once, under a PE mask.

Run:  python examples/quickstart.py
"""

from repro import induce, maspar_cost_model, parse_region
from repro.core import lower_schedule, render_simd_code

# Two threads of a bigger region: same load/store skeleton, different math.
REGION = parse_region("""
thread 0:
    a0 = ld    x
    a1 = mul   a0 a0
    a2 = add   a1 a0
    st  y  a2
thread 1:
    b0 = ld    x
    b1 = add   b0 b0
    b2 = mul   b1 b1
    st  y  b2
""")


def main() -> None:
    model = maspar_cost_model()

    print("Input region (two MIMD threads):")
    print(REGION.render())
    print()

    for method in ("serial", "lockstep", "greedy", "search"):
        result = induce(REGION, model, method=method)
        print(f"{method:>9s}: cost {result.cost:6.1f} cycles   "
              f"speedup vs serial {result.speedup_vs_serial:4.2f}x")
    print()

    best = induce(REGION, model, method="search")
    print("CSI schedule (X = thread enabled in that SIMD slot):")
    code = lower_schedule(best.schedule, REGION, model)
    print(render_simd_code(code, REGION.num_threads))
    print()
    stats = best.stats
    print(f"search stats: {stats.nodes_expanded} nodes expanded, "
          f"{stats.pruned_by_bound} bound-pruned, "
          f"{stats.pruned_by_memo} memo-pruned, optimal={stats.optimal}")


if __name__ == "__main__":
    main()
