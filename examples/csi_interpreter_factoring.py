#!/usr/bin/env python3
"""CSI rediscovers the hand-factored MIMD interpreter.

The paper's motivating use: the MasPar MIMD interpreter's handler bodies
share micro-op sequences — instruction fetch + PC increment, next-on-stack
fetch, immediate fetch, constant-pool lookup.  Hand-factoring them out made
the interpreter "several times" faster; CSI automates exactly that search.

This example expresses a set of handler bodies as a multi-thread region
(thread i = handler for MIMD instruction i) and lets each scheduler variant
at it.  Watch the `fetch` slot: CSI merges it across *all* handlers.

Run:  python examples/csi_interpreter_factoring.py
"""

from repro.core import induce, lower_schedule, render_simd_code
from repro.core.search import SearchConfig
from repro.util import format_table
from repro.workloads.threads import (
    interpreter_handler_region,
    interpreter_micro_cost_model,
)

HANDLERS = ("Add", "Mul", "Push", "PushC", "Ld", "StS")


def main() -> None:
    region = interpreter_handler_region(HANDLERS)
    model = interpreter_micro_cost_model()
    print(f"region: one thread per handler body of {', '.join(HANDLERS)}")
    print(f"{region.num_ops} micro-ops across {region.num_threads} handlers")
    print()

    rows = []
    results = {}
    for method in ("serial", "lockstep", "factor", "greedy", "search"):
        r = induce(region, model, method=method,
                   config=SearchConfig(node_budget=200_000) if method == "search" else None)
        results[method] = r
        rows.append([method, round(r.cost, 1), len(r.schedule),
                     round(r.schedule.sharing_factor(), 2),
                     f"{r.speedup_vs_serial:.2f}x"])
    print(format_table(
        ["method", "cost (cycles)", "slots", "ops/slot", "speedup vs serial"],
        rows, title="Inducing common subsequences across interpreter handlers"))
    print()

    best = results["search"]
    print("CSI schedule (note the single shared fetch/incpc prologue):")
    print(render_simd_code(lower_schedule(best.schedule, region, model),
                           region.num_threads))
    print()
    merged_fetch = [s for s in best.schedule
                    if s.opclass == "fetch" and s.width == len(HANDLERS)]
    print(f"fetch merged across all {len(HANDLERS)} handlers: "
          f"{'yes' if merged_fetch else 'no'}")
    print(f"unfactored interpreter would be "
          f"{results['serial'].cost / best.cost:.1f}x slower on this mix "
          f"(§3.1.3.2: 'several times slower' without factoring)")


if __name__ == "__main__":
    main()
