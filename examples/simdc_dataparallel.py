#!/usr/bin/env python3
"""SIMDC: the data-parallel dialect, and what it buys over interpretation.

The AHS position (§2) is that the *programming model* is the programmer's
choice — control-parallel MIMDC or data-parallel SIMDC — and the system
maps either onto the machine.  On the SIMD machine itself the difference
is stark: SIMDC compiles to native vector code, MIMDC is interpreted.

This example writes one computation both ways — an iterative stencil-ish
relaxation with a divergent correction step — runs both on the same
simulated machine, checks they agree bit-for-bit, and reports the dialect
gap.  It also shows the SIMDC feature set: where/else masking, scalar
control flow, reductions, rotate (router traffic), and plural arrays.

Run:  python examples/simdc_dataparallel.py
"""

import numpy as np

from repro.interp import run_program
from repro.lang import compile_mimdc
from repro.simdc import compile_simdc, run_simdc

NUM_PES = 64
STEPS = 25

SIMDC_SRC = f"""
plural int v, left, right;
int step, total;
int main() {{
    v = this * this % 50;              /* initial field */
    step = 0;
    while (step < {STEPS}) {{
        left  = rotate(v, -1);          /* router: neighbours */
        right = rotate(v, 1);
        v = (left + v + right) / 3;     /* relaxation */
        where (v % 7 == 0) v = v + this;  /* divergent correction */
        step = step + 1;
    }}
    total = reduceAdd(v);
    return total;
}}
"""

MIMDC_SRC = f"""
poly int v; poly int left; poly int right;
mono int total;
int nprocs;
int main() {{
    int step;
    v = this * this % 50;
    step = 0;
    while (step < {STEPS}) {{
        wait;
        left  = v[||(this + nprocs - 1) % nprocs];
        right = v[||(this + 1) % nprocs];
        wait;
        v = (left + v + right) / 3;
        if (v % 7 == 0) v = v + this;
        step = step + 1;
    }}
    wait;
    if (this == 0) {{
        int i; int acc;
        acc = 0; i = 0;
        while (i < nprocs) {{ acc = acc + v[||i]; i = i + 1; }}
        total = acc;
    }}
    wait;
    return total;
}}
"""


def main() -> None:
    sunit = compile_simdc(SIMDC_SRC)
    machine, result = run_simdc(sunit, NUM_PES)
    print(f"SIMDC (native vector code): result={result.value}, "
          f"{result.cycles:.0f} cycles, {len(sunit.vir)} VIR instructions")

    munit = compile_mimdc(MIMDC_SRC)
    interp, stats = run_program(
        munit.program, NUM_PES, layout=munit.layout,
        globals_init={munit.address_of("nprocs"): NUM_PES})
    mimdc_total = int(interp.peek_global(munit.address_of("total"))[0])
    print(f"MIMDC (interpreted):        result={mimdc_total}, "
          f"{stats.cycles:.0f} cycles, {len(munit.program)} MIMD instructions")

    assert result.value == mimdc_total, "the two dialects must agree!"
    print(f"\nresults agree; dialect gap = {stats.cycles / result.cycles:.1f}x "
          f"(the cost of interpreting MIMD on SIMD hardware)")
    print("\nSIMDC vector IR (head):")
    print("\n".join(sunit.vir.render().splitlines()[:10]))


if __name__ == "__main__":
    main()
