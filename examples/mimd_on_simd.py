#!/usr/bin/env python3
"""MIMD programs on a SIMD machine: the full pipeline.

Compiles a MIMDC program (the control-parallel C dialect), runs it on the
simulated MasPar-MP-1-style machine through the MIMD-on-SIMD interpreter,
and shows what each interpreter optimization is worth:

- CSI-factored handlers (shared fetch / NOS / immediate / pool sequences),
- subinterpreters (global-OR opcode summary -> cheapest of 32 decoders),
- frequency biasing (expensive ops serviced every m-th cycle),

plus the headline number: interpreted-MIMD throughput as a fraction of
native SIMD peak for the same work (the paper's setting claims 1/40..1/5).

Run:  python examples/mimd_on_simd.py
"""

import numpy as np

from repro.interp import FrequencyBias, InterpreterConfig, run_program
from repro.lang import compile_mimdc
from repro.simd import SIMDMachine
from repro.simd.native import native_polynomial
from repro.util import format_table

NUM_PES = 256
ITERS = 40

SOURCE = f"""
int result;
int main() {{
    int i; int acc; int p; int x;
    x = this;
    acc = 0;
    i = 0;
    while (i < {ITERS}) {{
        p = 2;
        p = p * x + 5;
        p = p * x + 7;
        if (this % 2 == 0) acc = acc + p;
        else               acc = acc + p / 3;
        i = i + 1;
    }}
    result = acc;
    return acc;
}}
"""


def main() -> None:
    unit = compile_mimdc(SOURCE)
    print(f"compiled: {len(unit.program)} MIMD instructions, "
          f"{len(unit.program.constants)} pool constants")
    print(f"expected op counts (for the AHS scheduler): "
          f"{ {k: round(v, 1) for k, v in sorted(unit.counts.items())[:6]} } ...")
    print()

    configs = [
        ("all optimizations", InterpreterConfig()),
        ("+ frequency bias", InterpreterConfig(bias=FrequencyBias(period=4))),
        ("no CSI factoring", InterpreterConfig(factored=False)),
        ("no subinterpreters", InterpreterConfig(subinterpreters=False)),
        ("naive (neither)", InterpreterConfig(factored=False, subinterpreters=False)),
    ]
    rows = []
    baseline = None
    result_ref = None
    for name, cfg in configs:
        interp, stats = run_program(unit.program, NUM_PES, config=cfg,
                                    layout=unit.layout)
        res = interp.peek_global(unit.address_of("result"))
        if result_ref is None:
            result_ref = res
        assert np.array_equal(res, result_ref), "optimizations changed semantics!"
        if baseline is None:
            baseline = stats.cycles
        rows.append([name, round(stats.cycles, 0), stats.cycle_count,
                     round(stats.pe_utilization(NUM_PES), 3),
                     f"{stats.cycles / baseline:4.2f}x"])
    print(format_table(
        ["interpreter variant", "SIMD cycles", "interp cycles", "PE util",
         "vs optimized"],
        rows, title=f"MIMDC kernel on {NUM_PES} simulated PEs"))
    print()

    # Fraction of native SIMD peak for the same arithmetic.
    machine = SIMDMachine(NUM_PES)
    native_polynomial(machine, ITERS)
    interp, stats = run_program(unit.program, NUM_PES, layout=unit.layout)
    frac = machine.cycles / stats.cycles
    print(f"native SIMD cycles for the core arithmetic: {machine.cycles:.0f}")
    print(f"interpreted MIMD cycles (full program):     {stats.cycles:.0f}")
    print(f"=> interpreted MIMD runs at 1/{1 / frac:.0f} of native SIMD peak "
          f"(paper's setting: between 1/40 and 1/5)")


if __name__ == "__main__":
    main()
