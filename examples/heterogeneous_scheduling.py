#!/usr/bin/env python3
"""Would you run it here... or there?  Automatic target selection.

Builds the Table-1-style fleet (workstations, multiprocessors, a 16,384-PE
MasPar, a network of Sun 4s), compiles three MIMDC programs with very
different communication profiles, and asks the AHS selector where to run
them — idle, then under load.  The loaded case reproduces the §4 story:
"if the MasPar has a multitude of jobs waiting and the Sun is idle, running
this code on the Sun may result in the smallest expected execution time."

Run:  python examples/heterogeneous_scheduling.py
"""

from repro.lang import compile_mimdc
from repro.sched import LoadGenerator, select_target, simulate_execution, update_load_averages
from repro.util import format_table
from repro.workloads.machines import table1_database
from repro.workloads.programs import kernel_source

PROGRAMS = {
    "compute-bound (axpy)": kernel_source("axpy", 200),
    "mono-heavy (barrier_heavy)": kernel_source("barrier_heavy", 50),
    "par-subscript (pairwise)": kernel_source("pairwise", 50),
}


def show_selection(db, title):
    rows = []
    for name, src in PROGRAMS.items():
        unit = compile_mimdc(src)
        for n_pes in (1, 16, 512):
            sel = select_target(db, unit.counts, n_pes)
            rows.append([name, n_pes, sel.description,
                         f"{sel.predicted_time * 1e3:.2f} ms"])
    print(format_table(["program", "PEs", "chosen target", "predicted"],
                       rows, title=title))
    print()


def main() -> None:
    db = table1_database()
    show_selection(db, "Idle fleet")

    # Load up the fleet: the MasPar queue deepens, workstations get busy.
    loaded = table1_database(maspar_load=300.0)
    loads = LoadGenerator(loaded.machines(), mean_load=4.0, volatility=1.0, seed=7)
    for _ in range(5):
        loads.step()
    update_load_averages(loaded, loads)
    show_selection(loaded, "Loaded fleet (MasPar queue depth 300, busy boxes)")

    # Prediction vs actual for one concrete run.
    unit = compile_mimdc(PROGRAMS["compute-bound (axpy)"])
    sel = select_target(loaded, unit.counts, 16)
    background = {m: loads.background_jobs(m) for m in loaded.machines()}
    actual = simulate_execution(sel, unit.counts, background,
                                recompile_overhead=0.0)
    print(f"16-PE axpy on the loaded fleet: chose {sel.description}")
    print(f"predicted {sel.predicted_time * 1e3:.2f} ms, "
          f"actual (event simulation) {actual * 1e3:.2f} ms")
    print()

    # The full §4.3 master-script flow in one call — when the fleet routes
    # a wide job to the MasPar, the program genuinely runs through the
    # MIMD-on-SIMD interpreter.
    from repro.ahs import run_ahs
    report = run_ahs(PROGRAMS["compute-bound (axpy)"], n_pes=1024,
                     db=table1_database(include_udp=False))
    print("end-to-end (run_ahs):", report.describe())
    print()

    # §5 future work: schedule individual functions.  A program with a
    # compute-heavy phase and a communication-heavy phase splits across
    # specialists when switching is cheap.
    from repro.sched import schedule_functions
    two_phase = compile_mimdc("""
        mono int channel;
        int crunch(int x) {
            int i; int s;
            s = 0; i = 0;
            while (i < 100) { s = s + x * x + i; i = i + 1; }
            return s;
        }
        int talk(int x) {
            int i;
            i = 0;
            while (i < 100) { channel = x + i; i = i + 1; }
            return channel;
        }
        int main() { return crunch(this) + talk(this); }
    """)
    sched = schedule_functions(table1_database(), two_phase.counts_by_function,
                               n_pes=8, switch_cost=1e-3,
                               phase_order=["crunch", "talk"])
    print("function-level schedule:", sched.describe())
    print(f"phases {['%.2f ms' % (t * 1e3) for t in sched.phase_times]}, "
          f"{sched.transitions} migration(s), "
          f"total {sched.total_time * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
