"""E15 — observability overhead: spans, metrics and JSONL tracing.

The instrumentation added for the induction service (hierarchical spans,
histogram metrics, structured trace events) runs on the hot path of every
``induce()`` call, so it must be cheap enough to leave on.  This
experiment measures the same branch-and-bound workload under increasing
observability:

- *off*       — no tracer: spans still propagate trace ids (the code
  never branches on whether tracing is on) but nothing is emitted;
- *memory*    — a :class:`MemoryTracer` sink (what workers use to record
  spans for replay across the process boundary);
- *jsonl*     — a :class:`JsonlTracer` writing every span and event to
  disk under its interleave-safe lock.

Each row reports mean wall time per call and the overhead ratio against
the uninstrumented baseline.  Honest accounting: the ratios depend on
how search-heavy the region is — a huge search amortizes instrumentation
to nothing, an all-cache-hit run is dominated by it — so the table
reports a small-but-real search where overhead is most visible, rather
than asserting a machine-dependent ratio.  The one hard assertion is
functional: the JSONL run must leave a parseable span tree behind.
"""

import time

from conftest import api_induce, bench_seed, record_table
from repro.core import maspar_cost_model
from repro.core.search import SearchConfig
from repro.obs import JsonlTracer, MemoryTracer, build_traces, load_span_events
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.util import format_table
from repro.workloads import RandomRegionSpec, random_region

MODEL = maspar_cost_model()
CALLS = 40


def bench_region(seed=7):
    return random_region(
        RandomRegionSpec(num_threads=4, min_len=6, max_len=6,
                         vocab_size=8, overlap=0.6, private_vocab=False),
        seed=bench_seed(seed))


def timed_calls(region, tracer=None):
    cfg = SearchConfig(node_budget=20_000)
    walls = []
    with use_registry(MetricsRegistry()):  # fresh registry per variant
        for _ in range(CALLS):
            t0 = time.perf_counter()
            api_induce(region, MODEL, config=cfg, tracer=tracer)
            walls.append(time.perf_counter() - t0)
    return sum(walls) / len(walls)


def run_experiment(tmp_path):
    region = bench_region()
    timed_calls(region)  # warm imports and allocator before measuring

    off = timed_calls(region)
    memory = timed_calls(region, MemoryTracer())
    jsonl_path = tmp_path / "bench_trace.jsonl"
    with JsonlTracer(jsonl_path) as tracer:
        jsonl = timed_calls(region, tracer)

    trees = build_traces(load_span_events(jsonl_path))
    assert len(trees) == CALLS
    assert all(t.roots[0].name == "induce" for t in trees)

    rows = [
        ["off (ids only)", f"{off * 1e3:.3f}", "1.00x"],
        ["memory sink", f"{memory * 1e3:.3f}", f"{memory / off:.2f}x"],
        ["jsonl sink", f"{jsonl * 1e3:.3f}", f"{jsonl / off:.2f}x"],
    ]
    table = format_table(
        ["tracing", "mean wall (ms/call)", "vs off"], rows,
        title=f"E15: observability overhead ({CALLS} induce() calls, "
              f"{region.num_ops} ops)")
    record_table("e15_obs_overhead", table, data={"rows": rows})


def test_e15_obs_overhead(tmp_path):
    run_experiment(tmp_path)
