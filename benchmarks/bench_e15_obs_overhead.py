"""E15 — observability overhead: spans, metrics, SLO and flight recorder.

The instrumentation added for the induction service (hierarchical spans,
histogram metrics, structured trace events, and — since the cluster
observability plane — per-request SLO accounting, flight-recorder
digests and histogram exemplars) runs on the hot path of every
``induce()`` call, so it must be cheap enough to leave on.  This
experiment measures the same branch-and-bound workload under increasing
observability:

- *off*       — no tracer: spans still propagate trace ids (the code
  never branches on whether tracing is on) but nothing is emitted;
- *memory*    — a :class:`MemoryTracer` sink (what workers use to record
  spans for replay across the process boundary);
- *jsonl*     — a :class:`JsonlTracer` writing every span and event to
  disk under its interleave-safe lock;
- *full*      — everything the server does per request: a JSONL sink
  tee'd with a per-request :class:`MemoryTracer` recorder, one
  :class:`SLOTracker` sample, one :class:`FlightRecorder` consideration,
  and an exemplar-carrying histogram observation.

Each row reports mean wall time per call and the overhead ratio against
the uninstrumented baseline.  Honest accounting: the ratios depend on
how search-heavy the region is — a huge search amortizes instrumentation
to nothing, an all-cache-hit run is dominated by it — so the table
reports a small-but-real search where overhead is most visible, rather
than asserting a machine-dependent ratio.  Hard assertions: the JSONL
runs must leave parseable span trees behind, and the *full* ratio must
not silently regress past the committed ``BENCH_obs.json`` reference
(with generous tolerance — it gates a 2x blow-up, not scheduler noise).
"""

import json
import pathlib
import time

from conftest import api_induce, bench_seed, record_table
from repro.core import maspar_cost_model
from repro.core.search import SearchConfig
from repro.obs import (
    FlightRecorder, JsonlTracer, MemoryTracer, SLOTracker, TeeTracer,
    build_traces, load_span_events, span,
)
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.util import format_table
from repro.workloads import RandomRegionSpec, random_region

MODEL = maspar_cost_model()
CALLS = 40

_REFERENCE = pathlib.Path(__file__).parent / "BENCH_obs.json"


def bench_region(seed=7):
    return random_region(
        RandomRegionSpec(num_threads=4, min_len=6, max_len=6,
                         vocab_size=8, overlap=0.6, private_vocab=False),
        seed=bench_seed(seed))


def timed_calls(region, tracer=None):
    cfg = SearchConfig(node_budget=20_000)
    walls = []
    with use_registry(MetricsRegistry()):  # fresh registry per variant
        for _ in range(CALLS):
            t0 = time.perf_counter()
            api_induce(region, MODEL, config=cfg, tracer=tracer)
            walls.append(time.perf_counter() - t0)
    return sum(walls) / len(walls)


def timed_full(region, jsonl_path):
    """Per-call cost of the complete server-side observability plane."""
    cfg = SearchConfig(node_budget=20_000)
    slo = SLOTracker()
    flightrec = FlightRecorder()
    registry = MetricsRegistry()
    walls = []
    with use_registry(registry), JsonlTracer(jsonl_path) as sink:
        for index in range(CALLS):
            t0 = time.perf_counter()
            recorder = MemoryTracer()
            tee = TeeTracer(sink, recorder)
            with span("bench.request", tee) as request:
                api_induce(region, MODEL, config=cfg, tracer=tee)
            induce_s = time.perf_counter() - t0
            slo.record(induce_s, ok=True)
            flightrec.record(fingerprint=f"bench-{index}", outcome="ok",
                             wall_s=induce_s, trace=request.trace_id,
                             spans=recorder.events)
            registry.observe("bench_request_seconds", induce_s,
                             trace_id=request.trace_id)
            walls.append(time.perf_counter() - t0)
    assert slo.status()["requests_total"] == CALLS
    assert flightrec.counts()["considered"] == CALLS
    return sum(walls) / len(walls)


def run_experiment(tmp_path):
    region = bench_region()
    timed_calls(region)  # warm imports and allocator before measuring

    off = timed_calls(region)
    memory = timed_calls(region, MemoryTracer())
    jsonl_path = tmp_path / "bench_trace.jsonl"
    with JsonlTracer(jsonl_path) as tracer:
        jsonl = timed_calls(region, tracer)
    full_path = tmp_path / "bench_full.jsonl"
    full = timed_full(region, full_path)

    trees = build_traces(load_span_events(jsonl_path))
    assert len(trees) == CALLS
    assert all(t.roots[0].name == "induce" for t in trees)
    full_trees = build_traces(load_span_events(full_path))
    assert len(full_trees) == CALLS
    assert all(t.roots[0].name == "bench.request" for t in full_trees)

    rows = [
        ["off (ids only)", f"{off * 1e3:.3f}", "1.00x"],
        ["memory sink", f"{memory * 1e3:.3f}", f"{memory / off:.2f}x"],
        ["jsonl sink", f"{jsonl * 1e3:.3f}", f"{jsonl / off:.2f}x"],
        ["full obs plane", f"{full * 1e3:.3f}", f"{full / off:.2f}x"],
    ]
    table = format_table(
        ["tracing", "mean wall (ms/call)", "vs off"], rows,
        title=f"E15: observability overhead ({CALLS} induce() calls, "
              f"{region.num_ops} ops)")
    data = {
        "rows": rows,
        "off_ms": off * 1e3,
        "full_ms": full * 1e3,
        "memory_ratio": memory / off,
        "jsonl_ratio": jsonl / off,
        "full_ratio": full / off,
    }
    record_table("e15_obs_overhead", table, data=data)
    return data


def test_e15_obs_overhead(tmp_path):
    data = run_experiment(tmp_path)
    # Regression gate: the full plane's overhead ratio must stay within
    # 2x of the committed reference (with an absolute floor so very fast
    # machines, where a few microseconds of bookkeeping is a large
    # *fraction*, don't flake the gate).
    reference = json.loads(_REFERENCE.read_text())["full"]["ratio"]
    assert data["full_ratio"] <= max(2.0 * reference, 1.5), (
        f"full obs plane overhead {data['full_ratio']:.2f}x exceeds gate "
        f"(reference {reference:.2f}x)")
