"""E18 (cluster) — sharded scale-out of the induction service.

E14 showed one node collapsing a repeat-heavy workload to ~one search per
unique region — *as long as the working set fits its cache*.  This
experiment is about what happens when it does not: every node has a fixed
spec (here: a small in-memory schedule cache), and the only way to grow
capacity is to add nodes.  The cluster's consistent-hash ring shards the
fingerprint space, so N nodes hold N caches' worth of schedules and every
repeat routes back to the shard that already induced it.

Workload: U unique E14-style regions submitted in interleaved repeat
order (r0 r1 ... rU r0 r1 ...), which is exactly the access pattern that
defeats a single node's LRU when U exceeds its capacity — by the time r0
comes around again it has been evicted.  Sharded 3 ways, each node owns
U/3 <= capacity regions and every repeat is a memory hit.

Phases:

- **1 node behind the router** vs **3 nodes behind the router** on the
  same workload (same code path, so the ratio isolates sharding);
- **chaos**: warm 3-node cluster with replicated caches, kill one node
  mid-run, and require zero lost requests with p99 within 3x of the
  healthy run (failovers land on the replica that already holds the
  schedule).

Acceptance criteria: 3-node throughput >= 2x single-node (and >= 0.5x the
committed reference in ``BENCH_cluster.json``); chaos run completes with
zero failures and bounded p99; at least one cross-node cache hit is
observed.  ``E18_SMOKE=1`` shrinks the workload for CI.
"""

import json
import os
import pathlib
import time

from conftest import bench_seed, record_table
from repro import api
from repro.cluster import HashRing, LocalCluster, RetryPolicy
from repro.core import maspar_cost_model
from repro.core.search import SearchConfig, branch_and_bound
from repro.service import ServiceClient
from repro.util import format_table
from repro.workloads import RandomRegionSpec, random_region

SMOKE = os.environ.get("E18_SMOKE", "") == "1"
MODE = "smoke" if SMOKE else "full"

MODEL = maspar_cost_model()
SPEC = RandomRegionSpec(num_threads=5, min_len=12, max_len=12, vocab_size=12,
                        overlap=0.4, private_vocab=False)
#: Per-shard working set and the per-node cache capacity it must fit in.
PER_NODE = 3 if SMOKE else 5
CAPACITY = PER_NODE + 1
NODES = 3
REPEATS = 3 if SMOKE else 4
BUDGET = 10_000 if SMOKE else 20_000

_REFERENCE = pathlib.Path(__file__).parent / "BENCH_cluster.json"


#: Candidate index -> request if its search exhausts BUDGET, else None.
#: Shared between phases so each candidate's calibration search runs once.
_CANDIDATES: dict = {}


def _expensive_candidate(index: int):
    """Request for candidate ``index`` iff its search is budget-bound.

    Random regions vary wildly in search cost (milliseconds to hundreds of
    milliseconds at the same budget); the bench needs every unique region
    to cost roughly one full budget so that the cache-hit/search contrast
    — not region luck — drives the measured ratio.  ``budget_exhausted``
    is the deterministic filter for that: roughly a quarter of this spec's
    regions qualify, each costing ~one budget's worth of expansion.
    """
    if index not in _CANDIDATES:
        region = random_region(SPEC, seed=bench_seed(0) + 100 + index)
        _, stats = branch_and_bound(region, MODEL,
                                    SearchConfig(node_budget=BUDGET))
        _CANDIDATES[index] = api.InductionRequest(
            region=region, model=MODEL, budget=BUDGET) \
            if stats.budget_exhausted else None
    return _CANDIDATES[index]


def _pick_balanced(cluster: LocalCluster, per_node: int):
    """Select ``per_node`` budget-bound regions owned by each node.

    Node names embed the cluster's temp directory, so ownership can only
    be decided per-run: walk the deterministic candidate stream, keep the
    budget-exhausted regions, and greedily fill each shard's quota.  The
    selection is what makes the experiment honest — every shard's working
    set fits its cache exactly when the whole set would thrash a single
    node's, and every unique region costs a comparable search.
    """
    ring = HashRing(cluster.config.node_names, vnodes=cluster.config.vnodes)
    quota = {name: per_node for name in ring.nodes}
    picked = []
    for index in range(40 * per_node * NODES):
        request = _expensive_candidate(index)
        if request is None:
            continue
        owner = ring.node_for(request.fingerprint())
        if quota[owner] > 0:
            quota[owner] -= 1
            picked.append(request)
        if not any(quota.values()):
            return picked
    raise RuntimeError(f"candidate pool too small: leftover quota {quota}")


def _run_workload(client: ServiceClient, requests, repeats: int,
                  on_index=None):
    """Interleaved repeats; returns (wall_s, per-request latencies, costs)."""
    latencies, costs, failed = [], {}, 0
    t0 = time.perf_counter()
    index = 0
    for rep in range(repeats):
        for position, request in enumerate(requests):
            if on_index is not None:
                on_index(index)
            t1 = time.perf_counter()
            try:
                result = client.submit(request)
            except Exception:  # noqa: BLE001 - chaos runs count losses
                failed += 1
            else:
                costs.setdefault(position, result.cost)
                assert result.cost == costs[position]
            latencies.append(time.perf_counter() - t1)
            index += 1
    return time.perf_counter() - t0, latencies, failed


def _p99(latencies):
    ranked = sorted(latencies)
    return ranked[min(len(ranked) - 1, int(0.99 * len(ranked)))]


def _throughput_phase(nodes: int, requests_from=None):
    """Run the interleaved workload on an ``nodes``-node cluster.

    ``replication=1`` keeps each schedule on its owner only, so cache
    pressure per node is exactly its owned shard — the fixed-node-spec
    premise of the scale-out claim.
    """
    with LocalCluster(nodes=nodes, cache_capacity=CAPACITY,
                      replication=1) as cluster:
        requests = requests_from(cluster) if requests_from else \
            _pick_balanced(cluster, PER_NODE)
        wall, latencies, failed = _run_workload(
            cluster.client(), requests, REPEATS)
        assert failed == 0
        stats = cluster.node_stats()
        hits = sum(s.get("cache_hits", 0) for s in stats)
        searches = sum(s.get("requests", 0) for s in stats) - hits
    return {"wall": wall, "n": len(latencies), "p99": _p99(latencies),
            "searches": searches, "hits": hits, "requests": requests}


def _chaos_phase(requests, healthy_p99: float):
    """Warm a replicated 3-node cluster, kill one node mid-run."""
    with LocalCluster(nodes=NODES, cache_capacity=64, replication=2,
                      retry=RetryPolicy(attempts=4, backoff_s=0.02),
                      mark_down_after=2) as cluster:
        # Re-shard the request set for THIS cluster's ring (node names are
        # per-run); ownership balance does not matter here, replication does.
        client = cluster.client()
        for request in requests:
            client.submit(request)

        # Cross-node cache tier check: a node that is neither owner nor
        # replica of requests[0] must local-miss and remote-hit.
        ring = HashRing(cluster.config.node_names,
                        vnodes=cluster.config.vnodes)
        owners = ring.preference(requests[0].fingerprint(), count=2)
        outsider = next(i for i, e in enumerate(cluster.endpoints)
                        if str(e) not in owners)
        cluster.node_client(outsider).submit(requests[0])
        remote_hits = sum(
            s.get("cache_remote_hits", 0) for s in cluster.node_stats())

        # Kill the node owning requests[0] one third into the run, while
        # requests are flowing.
        victim = next(i for i, e in enumerate(cluster.endpoints)
                      if str(e) == owners[0])
        total = len(requests) * REPEATS
        kill_at = max(1, total // 3)

        def chaos(index: int) -> None:
            if index == kill_at:
                cluster.kill_node(victim)

        wall, latencies, failed = _run_workload(
            client, requests, REPEATS, on_index=chaos)
        router_stats = cluster.router.stats()
    return {"wall": wall, "n": len(latencies), "failed": failed,
            "p99": _p99(latencies), "remote_hits": remote_hits,
            "failovers": router_stats.get("route_failovers", 0),
            "healthy_p99": healthy_p99}


def run_experiment():
    unique = PER_NODE * NODES

    three = _throughput_phase(NODES)
    # The single node gets the SAME region set (re-picked balance is
    # meaningless with one shard): capacity < unique regions, so the
    # interleaved repeats thrash its LRU.
    single = _throughput_phase(1, requests_from=lambda _c: three["requests"])

    ratio = (three["n"] / three["wall"]) / (single["n"] / single["wall"])
    chaos = _chaos_phase(three["requests"], healthy_p99=three["p99"])
    p99_ratio = chaos["p99"] / three["p99"] if three["p99"] else 0.0

    rows = [
        ["1 node  (cache %d)" % CAPACITY, single["n"],
         f"{single['wall']:.2f} s", f"{single['n'] / single['wall']:.1f} req/s",
         f"{single['hits']:.0f} hits / {single['searches']:.0f} searches"],
        ["3 nodes (cache %d each)" % CAPACITY, three["n"],
         f"{three['wall']:.2f} s", f"{three['n'] / three['wall']:.1f} req/s",
         f"{three['hits']:.0f} hits / {three['searches']:.0f} searches "
         f"({ratio:.1f}x)"],
        ["3 nodes, 1 killed mid-run", chaos["n"], f"{chaos['wall']:.2f} s",
         f"{chaos['failed']} lost, {chaos['failovers']:.0f} failovers",
         f"p99 {chaos['p99'] * 1e3:.1f} ms vs healthy "
         f"{three['p99'] * 1e3:.1f} ms"],
    ]
    text = format_table(
        ["configuration", "requests", "wall", "throughput", "effect"],
        rows,
        title=f"E18: sharded cluster scale-out [{MODE}], {unique} unique "
              f"regions x {REPEATS} interleaved repeats, budget {BUDGET}")
    data = {
        "mode": MODE, "unique_regions": unique, "repeats": REPEATS,
        "capacity": CAPACITY, "budget": BUDGET,
        "single_wall": single["wall"], "three_wall": three["wall"],
        "ratio": ratio, "healthy_p99_s": three["p99"],
        "chaos_p99_s": chaos["p99"], "chaos_p99_ratio": p99_ratio,
        "chaos_failed": chaos["failed"], "chaos_failovers": chaos["failovers"],
        "remote_hits": chaos["remote_hits"],
    }
    record_table("E18_cluster", text, data=data)
    return data


def test_e18_cluster(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Acceptance criterion: 3 fixed-spec nodes >= 2x one on the repeat
    # workload, and no silent regression vs the committed reference.
    assert data["ratio"] >= 2.0
    reference = json.loads(_REFERENCE.read_text())[MODE]["ratio"]
    assert data["ratio"] >= 0.5 * reference
    # Chaos: kill-one-node completes with zero lost requests and p99
    # within 3x of the healthy cluster.
    assert data["chaos_failed"] == 0
    assert data["chaos_p99_s"] <= 3.0 * data["healthy_p99_s"]
    # The remote tier produced at least one genuine cross-node hit.
    assert data["remote_hits"] >= 1
