"""E11 — the two dialects on one machine: SIMDC (native) vs MIMDC (interpreted).

The AHS position (§2) is that programmers pick the model that fits the
program — control-parallel MIMDC or data-parallel SIMDC — and the system
maps it to the machine.  On the SIMD machine itself, the cost of choosing
MIMDC is exactly the interpretation overhead: SIMDC compiles to native
vector code.  This experiment runs equivalent kernels through both
pipelines, asserts the *results* are identical, and reports the dialect
gap — which must land in the same 1/40..1/5 band as E5, since SIMDC
execution is (near-)peak.
"""

import numpy as np
import pytest

from conftest import record_table
from repro.interp import run_program
from repro.lang import compile_mimdc
from repro.simdc import compile_simdc, run_simdc
from repro.util import format_table
from repro.workloads.programs import kernel_source

NUM_PES = 128
ITERS = 30

#: SIMDC twins of the MIMDC kernels (same arithmetic per PE).
SIMDC_KERNELS = {
    "axpy": f"""
        plural int s;
        int n; int total;
        int main() {{
            int i;
            s = 0;
            i = 0;
            while (i < {ITERS}) {{
                s = s + 3 * this;
                s = s + i;
                i = i + 1;
            }}
            total = reduceAdd(s);
            return total;
        }}
    """,
    "polynomial": f"""
        plural int acc, p;
        int total;
        int main() {{
            int i;
            acc = 0;
            i = 0;
            while (i < {ITERS}) {{
                p = 2;
                p = p * this + 5;
                p = p * this + 7;
                acc = acc + p;
                i = i + 1;
            }}
            total = reduceAdd(acc);
            return total;
        }}
    """,
    "divergent": f"""
        plural int s, lane;
        int total;
        int main() {{
            int i;
            lane = this % 4;
            s = 0;
            i = 0;
            while (i < {ITERS}) {{
                where (lane == 0)      s = s + i * 17;
                else {{ where (lane == 1) s = s + (i << 2);
                else {{ where (lane == 2) s = s + i / 3;
                else                      s = s - i; }} }}
                i = i + 1;
            }}
            total = reduceAdd(s);
            return total;
        }}
    """,
}


def run_experiment():
    rows = []
    gaps = {}
    for name, simdc_src in SIMDC_KERNELS.items():
        # MIMDC (interpreted) side.
        unit = compile_mimdc(kernel_source(name, ITERS))
        interp, stats = run_program(unit.program, NUM_PES, layout=unit.layout)
        mimdc_sum = int(np.sum(interp.peek_global(unit.address_of("result"))))
        # SIMDC (native) side.
        sunit = compile_simdc(simdc_src)
        machine, result = run_simdc(sunit, NUM_PES)
        assert result.value == mimdc_sum, \
            f"{name}: dialects disagree ({result.value} vs {mimdc_sum})"
        gap = stats.cycles / result.cycles
        gaps[name] = gap
        rows.append([name, round(result.cycles, 0), round(stats.cycles, 0),
                     f"{gap:.1f}x", f"1/{gap:.0f}"])
    text = format_table(
        ["kernel", "SIMDC (native) cycles", "MIMDC (interpreted) cycles",
         "dialect gap", "MIMD fraction of native"],
        rows,
        title=f"E11: data-parallel vs control-parallel dialect on the same "
              f"machine ({NUM_PES} PEs)")
    record_table("E11_simdc_vs_mimdc", text, data={"rows": rows})
    return gaps


def test_e11_simdc_vs_mimdc(benchmark):
    gaps = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for name, gap in gaps.items():
        # The dialect gap is the interpretation overhead: the E5 band.
        assert 4 <= gap <= 45, f"{name}: gap {gap:.1f} outside 1/40..1/5-ish band"
    # Divergent code pays extra under interpretation (SIMD serialization of
    # instruction types) relative to straight-line compute.
    assert gaps["divergent"] >= 0.8 * gaps["axpy"]
