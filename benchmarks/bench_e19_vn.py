"""E19 — value-numbering pre-pass: merge density and cost on redundant code.

The vn pass (``repro.core.vn``) exists for regions where threads compute
the same values through differently spelled ops — the cross-thread
redundancy CSI wants to merge but the merge-key bucketing cannot see.
This experiment builds such a family deterministically: every thread
computes one shared recipe, but even threads spell power-of-two scaling
as ``shl`` while odd threads spell it ``mul`` (different opcode class:
unmergeable as written, and 8x the maspar issue cost), commutative reads
arrive in per-thread order, and immediates alternate int/float spellings.

Measured per region, vn=off vs vn=on through ``repro.api``:

1. **end-to-end cost improvement** — optimal (budget-bounded) schedule
   cost ratio off/on; the committed gate demands a >= 1.15x mean;
2. **merge-density uplift** — cross-thread merge-key candidates before
   and after the rewrite (from :class:`repro.core.vn.VNStats`);
3. **prepass overhead** — vn wall time as a fraction of a
   production-sized induce: the E16 node-heavy config (an E3-style 3x8
   region with the bound prunes off, so the search genuinely works
   through its node budget — the family regions above are deliberately
   easy so their cost ratios use *proven* optima, which makes their
   searches finish in about the prepass's own wall time and says nothing
   about overhead at real sizes), gated at <= 5%.

``E19_SMOKE=1`` shrinks the family/budget for CI; the regression gate
compares against ``benchmarks/BENCH_vn.json``.
"""

import json
import os
import pathlib
import time

import numpy as np

from conftest import api_induce, bench_seed, record_table
from repro.core import maspar_cost_model
from repro.core.ops import parse_region
from repro.core.vn import vn_prepass
from repro.util import format_table

SMOKE = os.environ.get("E19_SMOKE", "") not in ("", "0")
MODEL = maspar_cost_model()
BUDGET = 20_000 if SMOKE else 60_000
#: Node budget for the overhead probe (the default SearchConfig budget is
#: 200k, so the full-mode probe is exactly a production-sized search).
PROBE_BUDGET = 50_000 if SMOKE else 200_000
SNAPSHOT = pathlib.Path(__file__).parent / "BENCH_vn.json"

_OPS = ("add", "sub", "and", "or")

#: (name, threads, recipe length, seed offset) — the redundancy-heavy
#: family.  Thread count x length stays small enough that the bounded
#: search proves optimality on every leg, so the cost ratio is exact.
_FAMILY = [
    ("2x6 scaled", 2, 6, 0),
    ("3x6 scaled", 3, 6, 1),
    ("2x8 chained", 2, 8, 2),
    ("4x5 wide", 4, 5, 3),
]


def _redundant_region(num_threads, length, seed):
    """All threads compute one recipe, each spelling it differently."""
    rng = np.random.default_rng(seed)
    # Shared recipe: op j reads op j-1 (and sometimes j-2), with every
    # third op a power-of-two scale — the spelling-divergence site.
    recipe = []
    for j in range(1, length):
        if j % 3 == 1:
            recipe.append(("scale", int(rng.choice([1, 2]))))
        elif j >= 2 and rng.random() < 0.5:
            recipe.append((_OPS[int(rng.integers(len(_OPS)))], None))
        else:
            recipe.append((str(rng.choice(["add", "sub"])), 1))
    lines = []
    for t in range(num_threads):
        lines.append(f"thread {t}:")
        lines.append(f"    t{t}r0 = ld g0")
        for j, (kind, imm) in enumerate(recipe, start=1):
            dst = f"t{t}r{j}"
            prev, prev2 = f"t{t}r{j - 1}", f"t{t}r{max(j - 2, 0)}"
            if kind == "scale":
                # Even threads spell the scale as shl, odd threads as the
                # equivalent mul — vn rewrites both to shl #k.
                if t % 2 == 0:
                    lines.append(f"    {dst} = shl {prev} #{imm}")
                elif t % 4 == 1:
                    lines.append(f"    {dst} = mul {prev} #{2 ** imm}")
                else:
                    lines.append(f"    {dst} = mul {prev} #{float(2 ** imm)}")
            elif imm is None:
                reads = (prev, prev2) if t % 2 == 0 else (prev2, prev)
                lines.append(f"    {dst} = {kind} {' '.join(reads)}")
            else:
                lines.append(f"    {dst} = {kind} {prev} #{imm}")
    return parse_region("\n".join(lines))


def workload():
    picks = _FAMILY[:2] if SMOKE else _FAMILY
    return [(name, _redundant_region(threads, length, bench_seed(7) + off))
            for name, threads, length, off in picks]


def overhead_probe():
    """The E16 node-heavy config: a search that consumes its budget."""
    from repro.core.search import SearchConfig
    from repro.workloads import RandomRegionSpec, random_region
    spec = RandomRegionSpec(num_threads=3, min_len=8, max_len=8,
                            vocab_size=8, overlap=0.6, private_vocab=False)
    region = random_region(spec, seed=bench_seed(42))
    config = SearchConfig(node_budget=PROBE_BUDGET, use_cp_bound=False,
                          use_class_bound=False, use_memo=False)
    return region, config


def run_experiment():
    rows = []
    data = {"smoke": SMOKE, "budget": BUDGET, "regions": {}}
    ratios = []
    for name, region in workload():
        off = api_induce(region, MODEL, budget=BUDGET)
        on = api_induce(region, MODEL, budget=BUDGET, vn="on")
        # The prepass alone, for the merge-density numbers (api_induce
        # does not surface the VNStats it produced).
        _, vnstats = vn_prepass(region, MODEL, "on")

        assert off.stats.optimal and on.stats.optimal, (
            f"{name}: raise BUDGET — cost ratio needs proven optima")
        assert on.stats.best_cost <= off.stats.best_cost + 1e-9, (
            f"{name}: vn made the schedule worse "
            f"({on.stats.best_cost} > {off.stats.best_cost})")
        ratio = off.stats.best_cost / on.stats.best_cost
        ratios.append(ratio)

        data["regions"][name] = {
            "cost_off": off.stats.best_cost,
            "cost_on": on.stats.best_cost,
            "ratio": ratio,
            "rewrites": on.stats.vn_rewrites,
            "merged_candidates": on.stats.vn_merged_candidates,
            "mergekey_before": vnstats.mergekey_candidates_before,
            "mergekey_after": vnstats.mergekey_candidates_after,
            "vn_wall_s": vnstats.wall_s,
        }
        rows.append([name, f"{off.stats.best_cost:.0f}",
                     f"{on.stats.best_cost:.0f}", f"{ratio:.2f}x",
                     str(on.stats.vn_rewrites),
                     f"{vnstats.mergekey_candidates_before}->"
                     f"{vnstats.mergekey_candidates_after}",
                     f"{vnstats.wall_s * 1e3:.2f}"])

    # Overhead: the prepass against a budget-consuming search.
    probe, probe_config = overhead_probe()
    started = time.perf_counter()
    probe_res = api_induce(probe, MODEL, config=probe_config)
    probe_wall = time.perf_counter() - started
    _, probe_vn = vn_prepass(probe, MODEL, "on")
    assert probe_res.stats.nodes_expanded >= PROBE_BUDGET // 2, (
        f"overhead probe searched only {probe_res.stats.nodes_expanded} "
        f"nodes — not a production-sized denominator")

    data["mean_ratio"] = sum(ratios) / len(ratios)
    data["probe_budget"] = PROBE_BUDGET
    data["probe_nodes"] = probe_res.stats.nodes_expanded
    data["probe_induce_wall_s"] = probe_wall
    data["probe_vn_wall_s"] = probe_vn.wall_s
    data["prepass_overhead"] = (probe_vn.wall_s / probe_wall
                                if probe_wall else 0.0)
    text = format_table(
        ["region", "cost off", "cost on", "improvement", "rewrites",
         "merge cands", "vn ms"],
        rows,
        title=f"E19: vn pre-pass on redundancy-heavy regions "
              f"(budget {BUDGET:,}{', smoke' if SMOKE else ''}); "
              f"mean improvement {data['mean_ratio']:.2f}x, prepass "
              f"overhead {data['prepass_overhead'] * 100:.1f}%")
    record_table("E19_vn", text, data=data)
    return data


def _snapshot():
    if not SNAPSHOT.exists():
        return None
    snap = json.loads(SNAPSHOT.read_text())
    return snap.get("smoke" if SMOKE else "full")


def test_e19_vn(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Headline gate: the pass must lift the redundancy-heavy family by a
    # real margin, not round-off.
    assert data["mean_ratio"] >= 1.15, (
        f"vn cost improvement below gate: {data['mean_ratio']:.2f}x < 1.15x")
    # The rewrite must actually raise merge density somewhere.
    assert any(r["mergekey_after"] > r["mergekey_before"]
               for r in data["regions"].values()), (
        "vn raised merge density on no region in the family")
    # And it must be effectively free next to the search itself.
    assert data["prepass_overhead"] <= 0.05, (
        f"vn prepass overhead {data['prepass_overhead'] * 100:.1f}% "
        f"exceeds the 5% ceiling")
    reference = _snapshot()
    if reference is not None:
        floor = 0.75 * reference["mean_ratio"]
        assert data["mean_ratio"] >= floor, (
            f"vn improvement regressed: {data['mean_ratio']:.2f}x vs "
            f"snapshot {reference['mean_ratio']:.2f}x (floor {floor:.2f}x)")
