"""E5 — interpreted MIMD as a fraction of native SIMD peak (§3.1.2).

"On the MasPar MP-1, MIMD performance is typically between 1/40th and 1/5th
of peak SIMD performance."  For each kernel that exists both as MIMDC
source and as a native SIMD routine doing identical arithmetic, we run
both on the simulated machine and report the cycle ratio — asserting the
band and that the computed *results* agree exactly.
"""

import numpy as np
import pytest

from conftest import record_table
from repro.interp import InterpreterConfig, run_program
from repro.lang import compile_mimdc
from repro.simd import SIMDMachine
from repro.simd.native import NATIVE_KERNELS
from repro.util import format_table
from repro.workloads.programs import kernel_source

NUM_PES = 128
ITERS = 40
KERNELS = ("axpy", "polynomial", "pairwise")


def run_experiment():
    rows = []
    fractions = {}
    for name in KERNELS:
        unit = compile_mimdc(kernel_source(name, ITERS))
        init = {}
        if "nprocs" in unit.globals_map:
            init[unit.address_of("nprocs")] = NUM_PES
        interp, stats = run_program(unit.program, NUM_PES, layout=unit.layout,
                                    globals_init=init)
        machine = SIMDMachine(NUM_PES)
        native_result = NATIVE_KERNELS[name](machine, ITERS)
        mimd_result = interp.peek_global(unit.address_of("result"))
        assert np.array_equal(np.asarray(mimd_result), native_result), \
            f"{name}: interpreted result diverges from native"
        frac = machine.cycles / stats.cycles
        fractions[name] = frac
        rows.append([name, round(machine.cycles, 0), round(stats.cycles, 0),
                     f"1/{1 / frac:.0f}",
                     round(stats.pe_utilization(NUM_PES), 3)])
    text = format_table(
        ["kernel", "native SIMD cycles", "interpreted cycles",
         "fraction of peak", "PE util"],
        rows,
        title=f"E5: MIMD-on-SIMD vs native SIMD ({NUM_PES} PEs, "
              f"{ITERS} iterations)")
    record_table("E5_fraction_of_peak", text, data={"rows": rows})
    return fractions


def test_e5_fraction_of_peak(benchmark):
    fractions = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for name, frac in fractions.items():
        assert 1 / 40 <= frac <= 1 / 5, \
            f"{name}: fraction {frac:.4f} outside the paper's 1/40..1/5 band"
