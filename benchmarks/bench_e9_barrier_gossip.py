"""E9 — the bitmask-gossip barrier vs the usual n² method (§3.3).

PEs arrive at a barrier staggered in time over a lossy Ethernet.  The AHS
variation piggybacks arrival *bitmasks* on every message and ack, so
knowledge spreads transitively ("the single message from b informs c that
both a and b have arrived").  Expected shape: at zero loss the two are
comparable; as loss grows, gossip completes the barrier significantly
faster and with fewer total datagrams, because a lost announcement can be
healed by any third party instead of only by the announcer's retransmit
timer.
"""

import numpy as np
import pytest

from conftest import record_table
from repro.events import Kernel, Timeout
from repro.models import NetworkParams, UDPModel, UnixBoxParams
from repro.util import format_table

PE_COUNTS = (4, 8, 16, 32)
LOSSES = (0.0, 0.1, 0.3)
SEEDS = (0, 1, 2, 3, 4)
STAGGER = 0.001  # seconds between successive PE arrivals


def barrier_script(model, pe):
    yield Timeout(STAGGER * pe)
    yield from model.barrier(pe)


def episode(n_pes, loss, algo, seed):
    kernel = Kernel()
    model = UDPModel(kernel, UnixBoxParams(), n_pes,
                     net=NetworkParams(loss=loss), seed=seed,
                     barrier_algorithm=algo)
    model.run(barrier_script)
    ep = model.barrier_log[0]
    return ep.duration, ep.messages


def run_experiment():
    rows = []
    data = {}
    for loss in LOSSES:
        for n in PE_COUNTS:
            cell = {}
            for algo in ("gossip", "plain"):
                durs, msgs = [], []
                for seed in SEEDS:
                    d, m = episode(n, loss, algo, seed)
                    durs.append(d)
                    msgs.append(m)
                cell[algo] = (float(np.mean(durs)), float(np.mean(msgs)))
            data[(loss, n)] = cell
            g, p = cell["gossip"], cell["plain"]
            rows.append([loss, n,
                         f"{g[0] * 1e3:.2f}", f"{p[0] * 1e3:.2f}",
                         round(g[1], 0), round(p[1], 0),
                         f"{p[0] / g[0]:.2f}x"])
    text = format_table(
        ["loss", "PEs", "gossip ms", "plain ms", "gossip msgs", "plain msgs",
         "gossip delay win"],
        rows,
        title="E9: barrier completion, bitmask gossip vs plain n^2 "
              "(staggered arrivals, mean of 5 seeds)")
    record_table("E9_barrier_gossip", text, data={"rows": rows})
    return data


def test_e9_barrier_gossip(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Aggregate delay: across lossy cells with enough PEs for transitive
    # spreading, gossip recognizes barrier completion faster on average
    # (individual small cells are jitter-dominated).
    wins = [data[(loss, n)]["plain"][0] / data[(loss, n)]["gossip"][0]
            for loss in (0.1, 0.3) for n in (8, 16, 32)]
    assert sum(wins) / len(wins) > 1.0, wins
    # The largest lossy cell must show a clear win.
    assert data[(0.3, 32)]["plain"][0] > data[(0.3, 32)]["gossip"][0]
    # No big price on a clean network.
    for n in PE_COUNTS:
        g_dur, _ = data[(0.0, n)]["gossip"]
        p_dur, _ = data[(0.0, n)]["plain"]
        assert g_dur < 1.5 * p_dur
    # Gossip always needs fewer datagrams (acks carry information, and
    # retransmits only target PEs still unheard-from).
    for loss in LOSSES:
        for n in (8, 16, 32):
            assert data[(loss, n)]["gossip"][1] < data[(loss, n)]["plain"][1]
