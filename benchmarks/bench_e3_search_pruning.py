"""E3 — search cost and the value of each pruning rule.

The CSI paper's search is "heavily pruned"; this experiment measures what
the pruning buys.  For growing region sizes we run the branch-and-bound
with (a) all pruning, (b) each rule ablated, and (c) no pruning at all, and
report nodes expanded plus the schedule cost found.  Expected shape: orders
of magnitude fewer nodes with pruning, identical (optimal) costs; the
greedy heuristic is polynomial with a modest optimality gap.
"""

import pytest

from conftest import record_table
from repro.core import greedy_schedule, maspar_cost_model
from repro.core.search import SearchConfig, branch_and_bound
from repro.util import format_table
from repro.workloads import RandomRegionSpec, random_region

MODEL = maspar_cost_model()
SIZES = (4, 6, 8, 10)
BUDGET = 400_000

CONFIGS = {
    "full pruning": SearchConfig(node_budget=BUDGET),
    "no cp bound": SearchConfig(node_budget=BUDGET, use_cp_bound=False),
    "no class bound": SearchConfig(node_budget=BUDGET, use_class_bound=False),
    "no memo": SearchConfig(node_budget=BUDGET, use_memo=False),
    "no pruning": SearchConfig(node_budget=BUDGET, use_cp_bound=False,
                               use_class_bound=False, use_memo=False,
                               seed_with_greedy=False),
}


def region_for(size: int):
    return random_region(
        RandomRegionSpec(num_threads=3, min_len=size, max_len=size,
                         vocab_size=8, overlap=0.6, private_vocab=False),
        seed=42)


def run_experiment():
    rows = []
    data: dict[tuple[int, str], tuple[int, float, bool]] = {}
    for size in SIZES:
        region = region_for(size)
        greedy_cost = greedy_schedule(region, MODEL).cost(MODEL)
        row = [f"{size} ops/thread"]
        for name, config in CONFIGS.items():
            sched, stats = branch_and_bound(region, MODEL, config)
            data[(size, name)] = (stats.nodes_expanded, sched.cost(MODEL),
                                  stats.optimal)
            row.append(stats.nodes_expanded if stats.optimal
                       else f">{stats.nodes_expanded}")
        row.append(round(greedy_cost / data[(size, 'full pruning')][1], 3))
        rows.append(row)
    text = format_table(
        ["region"] + list(CONFIGS) + ["greedy/optimal cost"],
        rows,
        title="E3: nodes expanded by the CSI search (3 threads)")
    record_table("E3_search_pruning", text,
                 data={"budget": BUDGET, "rows": rows,
                       "nodes": {f"{s}/{n}": v
                                 for (s, n), v in data.items()}})
    return data


def test_e3_search_pruning(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for size in SIZES:
        full_nodes, full_cost, full_opt = data[(size, "full pruning")]
        none_nodes, none_cost, none_opt = data[(size, "no pruning")]
        # Pruning never degrades the schedule...
        if full_opt and none_opt:
            assert full_cost == pytest.approx(none_cost)
        # ...and buys a large node reduction on the bigger regions.
        if size >= 8 and none_opt:
            assert full_nodes * 5 <= none_nodes
    # greedy is never better than the exact search
    for size in SIZES:
        _, full_cost, full_opt = data[(size, "full pruning")]
        greedy_cost = greedy_schedule(region_for(size), MODEL).cost(MODEL)
        assert greedy_cost >= full_cost - 1e-9
