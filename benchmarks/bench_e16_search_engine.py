"""E16 — bitmask search engine vs the legacy reference implementation.

The branch-and-bound hot path was rewritten as an allocation-free bitmask
engine (int done-masks, incrementally maintained ready sets and bounds,
one explicit-stack loop); the original recursive implementation is kept
in-tree as the equivalence oracle (``SearchConfig(engine="legacy")``).
This experiment measures what the rewrite bought on the E3 region
(3 threads x 8 ops/thread, MasPar cost model) across pruning configs.

Honest accounting: ``branch_and_bound`` wall time includes shared setup
(DAG construction, critical paths, the greedy seed) that both engines pay
identically, so on small searches the end-to-end ratio understates the
hot-path gain.  We therefore time the *engine functions themselves* with
the setup precomputed once and shared, and report nodes/second — the
metric the engines can actually differ on.  Equality of every SearchStats
counter and of the returned slots is asserted on every run: a speedup on
a different traversal would be meaningless.

Acceptance criterion: on the node-heavy config the bitmask engine
delivers >= 5x the legacy nodes/second (>= 2x in smoke mode, where the
node budget is too small to fully amortize per-call constants).

``E16_SMOKE=1`` shrinks budgets/reps for CI; the regression gate compares
the measured bitmask/legacy *ratio* (hardware-independent) against the
committed ``benchmarks/BENCH_search.json`` snapshot and fails on a >30%
drop.
"""

import json
import os
import pathlib
import time

from conftest import bench_seed, record_table
from repro.core import maspar_cost_model
from repro.core.dag import build_dags
from repro.core.greedy import greedy_schedule
from repro.core.search import (
    _ENGINE_IMPLS,
    SearchConfig,
    SearchStats,
)
from repro.util import format_table
from repro.workloads import RandomRegionSpec, random_region

SMOKE = os.environ.get("E16_SMOKE", "") not in ("", "0")
MODEL = maspar_cost_model()
BUDGET = 4_000 if SMOKE else 400_000
REPS = 2 if SMOKE else 3
SNAPSHOT = pathlib.Path(__file__).parent / "BENCH_search.json"

CONFIGS = {
    "full pruning": dict(node_budget=BUDGET),
    "no class bound": dict(node_budget=BUDGET, use_class_bound=False),
    "no pruning": dict(node_budget=BUDGET, use_cp_bound=False,
                       use_class_bound=False, use_memo=False,
                       seed_with_greedy=False),
}

_COMPARED = ("nodes_expanded", "children_generated", "pruned_by_bound",
             "pruned_by_memo", "incumbent_updates", "best_cost",
             "budget_exhausted")


def e3_region(size: int = 8):
    return random_region(
        RandomRegionSpec(num_threads=3, min_len=size, max_len=size,
                         vocab_size=8, overlap=0.6, private_vocab=False),
        seed=bench_seed(42))


def _run_engine(engine, region, config, dags, crit, seed_slots, seed_cost):
    """One engine-only run replicating branch_and_bound's prologue."""
    stats = SearchStats(engine=engine)
    best_slots = list(seed_slots)
    if config.seed_with_greedy:
        stats.best_cost = seed_cost
    t0 = time.perf_counter()
    slots = _ENGINE_IMPLS[engine](region, MODEL, config, dags, crit,
                                  stats, best_slots)
    wall = time.perf_counter() - t0
    return slots, stats, wall


def run_experiment():
    region = e3_region()
    rows = []
    data = {"smoke": SMOKE, "budget": BUDGET, "reps": REPS, "configs": {}}
    for name, kwargs in CONFIGS.items():
        config = SearchConfig(**kwargs)
        # Shared setup, computed once: both engines get identical inputs.
        dags = build_dags(region, respect_order=config.respect_order)
        crit = tuple(dag.critical_path_costs(region[t], MODEL)
                     for t, dag in enumerate(dags))
        if config.seed_with_greedy:
            incumbent = greedy_schedule(region, MODEL, dags=dags)
            seed_slots = list(incumbent.slots)
            seed_cost = incumbent.cost(MODEL)
        else:
            seed_slots, seed_cost = [], 0.0

        walls = {"bitmask": [], "legacy": []}
        outcome = {}
        for _ in range(REPS):
            for engine in ("bitmask", "legacy"):
                slots, stats, wall = _run_engine(
                    engine, region, config, dags, crit, seed_slots, seed_cost)
                walls[engine].append(wall)
                outcome[engine] = (slots, stats)
        slots_b, stats_b = outcome["bitmask"]
        slots_l, stats_l = outcome["legacy"]
        # A faster engine on a different traversal would be meaningless:
        # schedules and every counter must agree before timing counts.
        assert slots_b == slots_l, f"{name}: schedules diverged"
        for field in _COMPARED:
            assert getattr(stats_b, field) == getattr(stats_l, field), \
                f"{name}: {field} diverged"

        nodes = stats_b.nodes_expanded
        wall_b, wall_l = min(walls["bitmask"]), min(walls["legacy"])
        nps_b = nodes / wall_b if wall_b else float("inf")
        nps_l = nodes / wall_l if wall_l else float("inf")
        ratio = nps_b / nps_l if nps_l else float("inf")
        data["configs"][name] = {
            "nodes": nodes,
            "bitmask_wall_s": wall_b,
            "legacy_wall_s": wall_l,
            "bitmask_nodes_per_s": nps_b,
            "legacy_nodes_per_s": nps_l,
            "ratio": ratio,
        }
        rows.append([name, nodes,
                     f"{wall_l * 1e6 / max(nodes, 1):.1f}",
                     f"{wall_b * 1e6 / max(nodes, 1):.1f}",
                     f"{nps_l:,.0f}", f"{nps_b:,.0f}", f"{ratio:.2f}x"])

    data["best_ratio"] = max(c["ratio"] for c in data["configs"].values())
    text = format_table(
        ["config", "nodes", "legacy us/node", "bitmask us/node",
         "legacy nodes/s", "bitmask nodes/s", "speedup"],
        rows,
        title=f"E16: bitmask vs legacy search engine, engine-only timing "
              f"(3x8-op E3 region, budget {BUDGET:,}"
              f"{', smoke' if SMOKE else ''})")
    record_table("E16_search_engine", text, data=data)
    return data


def _snapshot_ratio():
    """Committed reference ratio for this mode, or None if unavailable."""
    if not SNAPSHOT.exists():
        return None
    snap = json.loads(SNAPSHOT.read_text())
    mode = snap.get("smoke" if SMOKE else "full")
    return mode["best_ratio"] if mode else None


def test_e16_search_engine(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Acceptance criterion: >= 5x nodes/sec on the node-heavy config (the
    # smoke budget is too small to fully amortize per-call constants, so
    # CI gates at 2x there and leans on the snapshot ratio below).
    floor = 2.0 if SMOKE else 5.0
    assert data["best_ratio"] >= floor, (
        f"bitmask engine only {data['best_ratio']:.2f}x legacy "
        f"(floor {floor}x)")
    # Regression gate vs the committed snapshot: the bitmask/legacy ratio
    # is hardware-independent (same box runs both), so a >30% drop means
    # the fast path itself regressed.
    reference = _snapshot_ratio()
    if reference is not None:
        assert data["best_ratio"] >= 0.7 * reference, (
            f"engine speedup regressed: {data['best_ratio']:.2f}x vs "
            f"snapshot {reference:.2f}x (allowed floor "
            f"{0.7 * reference:.2f}x)")
