"""E16 — the three search engines head to head: array vs bitmask vs legacy.

The branch-and-bound hot path has been rewritten twice: first as an
allocation-free bitmask engine (int done-masks, incrementally maintained
ready sets and bounds, one explicit-stack loop), then as the array engine
(generation-time batched bounds, a state-keyed generation cache with
per-edge successor links, lazy state materialisation; numpy-vectorised
scoring past a fan-out threshold).  The original recursive implementation
is kept in-tree as the equivalence oracle (``SearchConfig(engine="legacy")``).
This experiment measures what each rewrite bought on the E3 region
(3 threads x 8 ops/thread, MasPar cost model) across pruning configs.

Honest accounting: ``branch_and_bound`` wall time includes shared setup
(DAG construction, critical paths, the greedy seed) that all engines pay
identically, so on small searches the end-to-end ratio understates the
hot-path gain.  We therefore time the *engine functions themselves* with
the setup precomputed once and shared, and report nodes/second — the
metric the engines can actually differ on.  Equality of every SearchStats
counter and of the returned slots is asserted on every run: a speedup on
a different traversal would be meaningless.

The array engine's win concentrates on the node-heavy (pruning-off)
config, where revisited states replay cached child batches; on the
bound-heavy configs subtrees die before the cache amortises and the
bitmask engine's lower per-node constant keeps it the better default.
Both facts are recorded — the per-config ratios below are the honest
trade-off, not a victory lap.

Acceptance criteria, gated by ``test_e16_search_engine``:

- bitmask >= 5x legacy nodes/sec on the node-heavy config (2x in smoke);
- array >= 3x bitmask nodes/sec on the node-heavy config (smoke and full);
- array absolute throughput >= the committed nodes/sec floor for the mode
  (``array_floor_nodes_per_s`` in ``benchmarks/BENCH_search.json``, set
  conservatively below dev-box measurements so slow CI runners pass);
- both ratios stay within 30% of the committed snapshot ratios.

``E16_SMOKE=1`` shrinks budgets/reps for CI.  ``E16_SCALAR=1`` disables
the numpy vectorised path (``arrayengine._np = None``) to time and gate
the pure-Python fallback — results are bit-identical either way, and the
bench skips cleanly if numpy is missing entirely (the workload generator
needs it).
"""

import json
import os
import pathlib
import time

import pytest

from conftest import bench_seed, record_table
from repro.core import maspar_cost_model
from repro.core.dag import build_dags
from repro.core.greedy import greedy_schedule
from repro.core.search import (
    _ENGINE_IMPLS,
    SearchConfig,
    SearchStats,
)
from repro.util import format_table

try:
    from repro.workloads import RandomRegionSpec, random_region
except ImportError:  # pragma: no cover - numpy-less install
    pytest.skip("numpy not installed; the E16 workload generator needs it",
                allow_module_level=True)

SMOKE = os.environ.get("E16_SMOKE", "") not in ("", "0")
SCALAR = os.environ.get("E16_SCALAR", "") not in ("", "0")
if SCALAR:
    from repro.core.engines import arrayengine

    arrayengine._np = None
MODEL = maspar_cost_model()
BUDGET = 4_000 if SMOKE else 400_000
REPS = 2 if SMOKE else 3
SNAPSHOT = pathlib.Path(__file__).parent / "BENCH_search.json"

#: Measurement order: the reference first, then the two fast engines.
ENGINES_MEASURED = ("legacy", "bitmask", "array")

CONFIGS = {
    "full pruning": dict(node_budget=BUDGET),
    "no class bound": dict(node_budget=BUDGET, use_class_bound=False),
    "no pruning": dict(node_budget=BUDGET, use_cp_bound=False,
                       use_class_bound=False, use_memo=False,
                       seed_with_greedy=False),
}

_COMPARED = ("nodes_expanded", "children_generated", "pruned_by_bound",
             "pruned_by_memo", "incumbent_updates", "best_cost",
             "budget_exhausted")


def e3_region(size: int = 8):
    return random_region(
        RandomRegionSpec(num_threads=3, min_len=size, max_len=size,
                         vocab_size=8, overlap=0.6, private_vocab=False),
        seed=bench_seed(42))


def _run_engine(engine, region, config, dags, crit, seed_slots, seed_cost):
    """One engine-only run replicating branch_and_bound's prologue."""
    stats = SearchStats(engine=engine)
    best_slots = list(seed_slots)
    if config.seed_with_greedy:
        stats.best_cost = seed_cost
    t0 = time.perf_counter()
    slots = _ENGINE_IMPLS[engine](region, MODEL, config, dags, crit,
                                  stats, best_slots)
    wall = time.perf_counter() - t0
    return slots, stats, wall


def run_experiment():
    region = e3_region()
    rows = []
    data = {"smoke": SMOKE, "scalar": SCALAR, "budget": BUDGET,
            "reps": REPS, "configs": {}}
    for name, kwargs in CONFIGS.items():
        config = SearchConfig(**kwargs)
        # Shared setup, computed once: all engines get identical inputs.
        dags = build_dags(region, respect_order=config.respect_order)
        crit = tuple(dag.critical_path_costs(region[t], MODEL)
                     for t, dag in enumerate(dags))
        if config.seed_with_greedy:
            incumbent = greedy_schedule(region, MODEL, dags=dags)
            seed_slots = list(incumbent.slots)
            seed_cost = incumbent.cost(MODEL)
        else:
            seed_slots, seed_cost = [], 0.0

        walls = {engine: [] for engine in ENGINES_MEASURED}
        outcome = {}
        for _ in range(REPS):
            for engine in ENGINES_MEASURED:
                slots, stats, wall = _run_engine(
                    engine, region, config, dags, crit, seed_slots, seed_cost)
                walls[engine].append(wall)
                outcome[engine] = (slots, stats)
        # A faster engine on a different traversal would be meaningless:
        # schedules and every counter must agree before timing counts.
        slots_ref, stats_ref = outcome["legacy"]
        for engine in ("bitmask", "array"):
            slots_e, stats_e = outcome[engine]
            assert slots_e == slots_ref, f"{name}: {engine} schedule diverged"
            for field in _COMPARED:
                assert getattr(stats_e, field) == getattr(stats_ref, field), \
                    f"{name}: {engine} {field} diverged"

        nodes = stats_ref.nodes_expanded
        wall = {e: min(walls[e]) for e in ENGINES_MEASURED}
        nps = {e: nodes / wall[e] if wall[e] else float("inf")
               for e in ENGINES_MEASURED}
        ratio = nps["bitmask"] / nps["legacy"] if nps["legacy"] \
            else float("inf")
        array_ratio = nps["array"] / nps["bitmask"] if nps["bitmask"] \
            else float("inf")
        data["configs"][name] = {
            "nodes": nodes,
            "legacy_wall_s": wall["legacy"],
            "bitmask_wall_s": wall["bitmask"],
            "array_wall_s": wall["array"],
            "legacy_nodes_per_s": nps["legacy"],
            "bitmask_nodes_per_s": nps["bitmask"],
            "array_nodes_per_s": nps["array"],
            "ratio": ratio,
            "array_ratio": array_ratio,
        }
        rows.append([name, nodes,
                     f"{nps['legacy']:,.0f}", f"{nps['bitmask']:,.0f}",
                     f"{nps['array']:,.0f}",
                     f"{ratio:.2f}x", f"{array_ratio:.2f}x"])

    data["best_ratio"] = max(c["ratio"] for c in data["configs"].values())
    data["best_array_ratio"] = max(
        c["array_ratio"] for c in data["configs"].values())
    data["best_array_nodes_per_s"] = max(
        c["array_nodes_per_s"] for c in data["configs"].values())
    text = format_table(
        ["config", "nodes", "legacy nodes/s", "bitmask nodes/s",
         "array nodes/s", "bitmask/legacy", "array/bitmask"],
        rows,
        title=f"E16: search engines, engine-only timing "
              f"(3x8-op E3 region, budget {BUDGET:,}"
              f"{', smoke' if SMOKE else ''}"
              f"{', scalar' if SCALAR else ''})")
    record_table("E16_search_engine", text, data=data)
    return data


def _snapshot_mode():
    """Committed reference values for this mode, or None if unavailable."""
    if not SNAPSHOT.exists():
        return None
    snap = json.loads(SNAPSHOT.read_text())
    return snap.get("smoke" if SMOKE else "full")


def test_e16_search_engine(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Acceptance criterion: >= 5x bitmask/legacy nodes/sec on the
    # node-heavy config (the smoke budget is too small to fully amortize
    # per-call constants, so CI gates at 2x there and leans on the
    # snapshot ratio below), and >= 3x array/bitmask in both modes.
    floor = 2.0 if SMOKE else 5.0
    assert data["best_ratio"] >= floor, (
        f"bitmask engine only {data['best_ratio']:.2f}x legacy "
        f"(floor {floor}x)")
    assert data["best_array_ratio"] >= 3.0, (
        f"array engine only {data['best_array_ratio']:.2f}x bitmask "
        f"(floor 3x)")
    reference = _snapshot_mode()
    if reference is not None:
        # Absolute throughput floor: the array engine must clear a fixed
        # nodes/sec bar on the node-heavy config.  The committed floor is
        # far below dev-box measurements (CI runners are slow), but a
        # pure-Python search that drops under it has lost the plot.
        abs_floor = reference.get("array_floor_nodes_per_s")
        if abs_floor:
            assert data["best_array_nodes_per_s"] >= abs_floor, (
                f"array engine at {data['best_array_nodes_per_s']:,.0f} "
                f"nodes/s, below the absolute floor {abs_floor:,.0f}")
        # Regression gates vs the committed snapshot: the engine/engine
        # ratios are hardware-independent (same box runs all three), so a
        # >30% drop means a fast path itself regressed.
        for key, measured in (("best_ratio", data["best_ratio"]),
                              ("array_ratio", data["best_array_ratio"])):
            committed = reference.get(key)
            if committed:
                assert measured >= 0.7 * committed, (
                    f"{key} regressed: {measured:.2f}x vs snapshot "
                    f"{committed:.2f}x (allowed floor "
                    f"{0.7 * committed:.2f}x)")
