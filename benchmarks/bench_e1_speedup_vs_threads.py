"""E1 — CSI speedup over serialized MIMD emulation vs thread count.

Reconstruction of the CSI paper's headline result: induced-schedule
execution time against the serialization baseline as the number of threads
sharing the SIMD machine grows.  Expected shape: speedup grows with thread
count (sublinearly — masking overhead and unmergeable ops), with
search >= greedy >= 1 everywhere.
"""

import pytest

from conftest import api_induce, record_table
from repro.core import maspar_cost_model
from repro.core.search import SearchConfig
from repro.util import format_table, geometric_mean
from repro.workloads import RandomRegionSpec, random_region

THREAD_COUNTS = (1, 2, 4, 8, 16)
SEEDS = (0, 1, 2)
MODEL = maspar_cost_model()
CONFIG = SearchConfig(node_budget=30_000)
METHODS = ("lockstep", "factor", "greedy", "search")


def region_for(t: int, seed: int):
    return random_region(
        RandomRegionSpec(num_threads=t, min_len=12, max_len=20,
                         vocab_size=16, overlap=0.6, private_vocab=False),
        seed=seed)


def run_experiment() -> dict[str, dict[int, float]]:
    by_method: dict[str, dict[int, float]] = {m: {} for m in METHODS}
    for method in METHODS:
        for t in THREAD_COUNTS:
            vals = []
            for seed in SEEDS:
                r = api_induce(region_for(t, seed), MODEL, method=method,
                           config=CONFIG if method == "search" else None)
                vals.append(r.speedup_vs_serial)
            by_method[method][t] = geometric_mean(vals)
    rows = [[t] + [round(by_method[m][t], 2) for m in METHODS]
            for t in THREAD_COUNTS]
    text = format_table(
        ["threads", "lockstep", "prefix/suffix", "greedy CSI", "search CSI"],
        rows,
        title="E1: speedup over serialized MIMD emulation (geomean, 3 seeds)")
    record_table("E1_speedup_vs_threads", text, data={"rows": rows})
    return by_method


def test_e1_speedup_vs_threads(benchmark):
    by_method = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    search = by_method["search"]
    assert search[1] == pytest.approx(1.0, abs=0.01)
    assert search[16] > search[4] > 1.3
    for t in THREAD_COUNTS:
        assert by_method["search"][t] >= by_method["greedy"][t] - 1e-9
        assert by_method["greedy"][t] >= 1.0 - 1e-9
