"""E7 — Table 1: per-operation times for every target (§4.1.1).

Regenerates the supplied text's Table 1: for each machine archetype and
execution model, the stable times of the basic operations — ADD from the
machine's compute speed, LDS/STS/WAIT *measured by running micro-workloads
on the execution-model simulators*, then passed through the noisy ``timer``
procedure (clock quantization + 5-point median filtering) exactly as AHS's
configuration step would.

Expected shape (the text's own reading of its Table 1): LDS >> ADD on every
model except the MasPar; the UDP-socket LDS over Ethernet is close to
intra-machine pipe IPC and ~4x better than a PVM-style daemon path.
"""

import pytest

from conftest import record_table
from repro.events import Kernel
from repro.models import DaemonModel
from repro.sched import measure_op_times
from repro.util import format_table
from repro.workloads.machines import (
    ARCHETYPES,
    _maspar_op_times,
    measure_entry_op_times,
    unix_box_params,
)

#: Time PVM took for the same LDS on the same hardware (§4.1.1: ~1.6e-3 s).
PVM_LDS = 1.6e-3


def _measure_daemon_lds(arch, reps=25) -> float:
    """LdS through the PVM-style daemon path (same wire, extra daemons)."""
    kernel = Kernel()
    model = DaemonModel(kernel, unix_box_params(arch), 2)

    def script(m, pe):
        for _ in range(reps):
            _ = yield from m.lds(pe, "remote_var")

    stats = model.run(script)
    return stats.makespan / reps


def run_experiment():
    rows = []
    data: dict[tuple[str, str], dict[str, float]] = {}
    for arch in ARCHETYPES:
        if arch.kind == "maspar":
            true_times = _maspar_op_times(arch)
            models = ["maspar"]
        elif arch.kind == "network":
            models = ["udp"]
        else:
            models = ["pipes", "file"]
        for model in models:
            if arch.kind != "maspar":
                true_times = measure_entry_op_times(arch, model, reps=25)
            # Run the measured truth through the noisy AHS timer.
            sample = {op: true_times[op]
                      for op in ("Add", "LdS", "StS", "Wait") if op in true_times}
            est = measure_op_times(sample, seed=hash((arch.name, model)) % 2**32)
            data[(arch.name, model)] = est
            rows.append([arch.name, model,
                         f"{est['Add']:.2e}", f"{est['LdS']:.2e}",
                         f"{est['StS']:.2e}", f"{est['Wait']:.2e}",
                         round(est["LdS"] / est["Add"], 1)])
    # The PVM comparison row: same network archetype, daemon-mediated.
    net_arch = next(a for a in ARCHETYPES if a.kind == "network")
    daemon_lds = _measure_daemon_lds(net_arch)
    rows.append([net_arch.name, "daemon*", "-", f"{daemon_lds:.2e}", "-", "-", "-"])
    data[("sun4-network", "daemon")] = {"LdS": daemon_lds}
    text = format_table(
        ["machine", "model", "ADD (s)", "LDS (s)", "STS (s)", "WAIT (s)",
         "LDS/ADD"],
        rows,
        title="E7 (Table 1): measured basic-operation times per target\n"
              "(*daemon = the PVM-style path AHS avoids; §4.1.1 reports "
              "~1.6e-3 s for it)")
    record_table("E7_operation_times", text, data={"rows": rows})
    return data


def test_e7_operation_times(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for (name, model), est in data.items():
        if model == "daemon":
            continue
        ratio = est["LdS"] / est["Add"]
        if model == "maspar":
            # The Table-1 anomaly: MasPar communication ~ compute.
            assert ratio < 5
        else:
            assert ratio > 20, f"{name}/{model}: LDS only {ratio:.0f}x ADD"
    # UDP LDS ~ intra-machine IPC and much better than the PVM daemon path.
    udp_lds = data[("sun4-network", "udp")]["LdS"]
    pipe_lds = data[("sun4-490", "pipes")]["LdS"]
    daemon_lds = data[("sun4-network", "daemon")]["LdS"]
    assert udp_lds < 3 * pipe_lds
    assert udp_lds < PVM_LDS / 2
    # The daemon path lands in PVM territory, several times above UDP.
    assert daemon_lds > 2.5 * udp_lds
    assert PVM_LDS / 3 < daemon_lds < PVM_LDS * 3
