"""E13 — the schedule cache and parallel window fan-out.

The windowed search (E12) makes large regions tractable; this experiment
measures the two scale features layered on top of it:

- *content-addressed caching*: SPMD traces repeat the same windows
  constantly, so a warm cache answers ``induce()`` in O(lookup) — we
  report the cold/warm wall-time ratio and the cache hit rate, and assert
  the acceptance criterion that a warm repeat is >= 10x faster;
- *process-pool fan-out* (``jobs > 1``): windows are embarrassingly
  parallel; we report wall time serial vs parallel on a region large
  enough that the search dominates the fork/pickle overhead, and assert
  the schedules are identical.

Honest accounting: parallel speedup depends on core count and workload
size — on tiny regions the pool overhead loses (which is why
``windowed_induce`` falls back to serial there, covered by unit tests),
and on a single-core machine the fan-out cannot beat the serial loop at
all.  The table reports whatever this machine delivers, alongside its
core count, rather than asserting a ratio.
"""

import os
import time

import pytest

from conftest import api_induce, bench_seed, record_table
from repro.core import (
    ScheduleCache,
    maspar_cost_model,
)
from repro.core.search import SearchConfig
from repro.util import format_table
from repro.workloads import RandomRegionSpec, random_region

MODEL = maspar_cost_model()
BUDGET = 60_000


def dense_region(seed=0, threads=5, length=10):
    return random_region(
        RandomRegionSpec(num_threads=threads, min_len=length, max_len=length,
                         vocab_size=8, overlap=0.6, private_vocab=False),
        seed=bench_seed(seed))


def wide_region(seed=1):
    return random_region(
        RandomRegionSpec(num_threads=8, min_len=64, max_len=64,
                         vocab_size=12, overlap=0.6, private_vocab=False),
        seed=bench_seed(seed))


def run_experiment():
    rows = []
    data = {}

    # -- Caching: cold search vs warm lookup on a dense whole region. -----
    cache = ScheduleCache()
    region = dense_region()
    cfg = SearchConfig(node_budget=BUDGET)
    cold = api_induce(region, MODEL, config=cfg, cache=cache)
    warm_walls = []
    for _ in range(3):
        t0 = time.perf_counter()
        warm = api_induce(region, MODEL, config=cfg, cache=cache)
        warm_walls.append(time.perf_counter() - t0)
    assert warm.cache_hit and warm.cost == cold.cost
    warm_wall = min(warm_walls)
    ratio = cold.wall_s / warm_wall if warm_wall else float("inf")
    data["cache_ratio"] = ratio
    rows.append(["induce() cold (search)", f"{cold.wall_s * 1e3:.1f} ms", "-"])
    rows.append(["induce() warm (cache hit)", f"{warm_wall * 1e3:.3f} ms",
                 f"{ratio:.0f}x faster"])

    # -- Caching across a windowed run: hit rate on repeat. ---------------
    wcache = ScheduleCache()
    wregion = wide_region()
    wcfg = SearchConfig(node_budget=3_000)
    t0 = time.perf_counter()
    wcold = api_induce(wregion, MODEL, window_size=8, config=wcfg,
                            cache=wcache)
    cold_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    wwarm = api_induce(wregion, MODEL, window_size=8, config=wcfg,
                            cache=wcache)
    warm_wall_w = time.perf_counter() - t0
    assert wwarm.schedule == wcold.schedule
    data["windowed_hit_rate"] = wwarm.cache_hits / wwarm.num_windows
    rows.append(["windowed cold (8 windows)", f"{cold_wall * 1e3:.1f} ms",
                 f"hit rate {wcache.hit_rate:.0%}"])
    rows.append(["windowed warm", f"{warm_wall_w * 1e3:.1f} ms",
                 f"{wwarm.cache_hits}/{wwarm.num_windows} windows hit"])

    # -- Parallel fan-out: serial vs jobs=4 with search-dominated windows.
    pcfg = SearchConfig(node_budget=40_000)
    t0 = time.perf_counter()
    serial = api_induce(wregion, MODEL, window_size=8, config=pcfg)
    serial_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = api_induce(wregion, MODEL, window_size=8, config=pcfg,
                               jobs=4)
    parallel_wall = time.perf_counter() - t0
    assert parallel.schedule == serial.schedule
    data["parallel_identical"] = parallel.schedule == serial.schedule
    data["jobs_used"] = parallel.jobs_used
    data["serial_wall"] = serial_wall
    data["parallel_wall"] = parallel_wall
    speedup = serial_wall / parallel_wall if parallel_wall else float("inf")
    rows.append(["windowed serial (jobs=1)", f"{serial_wall * 1e3:.1f} ms", "-"])
    rows.append([f"windowed parallel (jobs={parallel.jobs_used})",
                 f"{parallel_wall * 1e3:.1f} ms", f"{speedup:.2f}x"])

    text = format_table(
        ["configuration", "wall time", "effect"],
        rows,
        title=f"E13: schedule cache and parallel windows "
              f"({os.cpu_count()} cores)")
    record_table("E13_cache_parallel", text, data={"rows": rows, **data})
    return data


def test_e13_cache_parallel(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Acceptance criterion: a warm cache repeat is at least 10x faster.
    assert data["cache_ratio"] >= 10.0
    # A repeated windowed run hits on every window.
    assert data["windowed_hit_rate"] == 1.0
    # Fan-out is adaptive: on boxes where the pool cannot win (one core,
    # or windows priced below its startup cost) jobs=4 stays serial, so
    # the honest invariant is "never slower than serial beyond noise",
    # not "always engaged".
    assert data["parallel_identical"]
    assert data["parallel_wall"] <= data["serial_wall"] * 1.25
