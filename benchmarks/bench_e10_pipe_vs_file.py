"""E10 — pipe-based vs file-based execution model (§3.2.2).

"The file-based implementation ... is nearly always more efficient":
a mono load is one lseek+read against the pipe model's two reads, two
writes and two process context switches; stores are slightly faster;
parallel subscripting is somewhat inefficient on both (shadow copies /
control-process parking).  This experiment measures all four operations on
both models across PE counts and prints the cost decomposition.
"""

import pytest

from conftest import record_table
from repro.events import Kernel
from repro.models import FileModel, PipeModel, UnixBoxParams
from repro.util import format_table

PARAMS = UnixBoxParams(cores=1)  # a uniprocessor: control contends
REPS = 40
PE_COUNTS = (2, 4, 8)


def measure(model_cls, n_pes, op):
    kernel = Kernel()
    model = model_cls(kernel, PARAMS, n_pes)

    def script(m, pe):
        if op == "LdS":
            for _ in range(REPS):
                _ = yield from m.lds(pe, "x")
        elif op == "StS":
            # Sustained store throughput: the trailing barrier makes the
            # makespan include the control process draining its queue —
            # fire-and-forget writes are not free once the server is the
            # bottleneck.
            for _ in range(REPS):
                yield from m.sts(pe, "x", pe)
            yield from m.barrier(pe)
        elif op == "Wait":
            for _ in range(REPS):
                yield from m.barrier(pe)
        elif op == "LdD":
            yield from m.publish(pe, "v", pe)
            yield from m.barrier(pe)
            for _ in range(REPS):
                _ = yield from m.ldd(pe, (pe + 1) % m.n_pes, "v")

    stats = model.run(script)
    return stats.makespan / REPS


def run_experiment():
    rows = []
    data = {}
    for n in PE_COUNTS:
        for op in ("LdS", "StS", "Wait", "LdD"):
            if op == "LdD":
                # Parked parallel subscripting deadlocks a pure-read script
                # on the pipe model once the owner goes quiet, so measure
                # the file model only (the pipe entry is unlisted in the
                # Table-1 database for exactly this reason).
                file_t = measure(FileModel, n, op)
                data[(n, op)] = (None, file_t)
                rows.append([n, op, "unsupported", f"{file_t:.2e}", "-"])
                continue
            pipe_t = measure(PipeModel, n, op)
            file_t = measure(FileModel, n, op)
            data[(n, op)] = (pipe_t, file_t)
            rows.append([n, op, f"{pipe_t:.2e}", f"{file_t:.2e}",
                         f"{pipe_t / file_t:.2f}x"])
    text = format_table(
        ["PEs", "op", "pipe model (s)", "file model (s)", "pipe/file"],
        rows,
        title=f"E10: per-op cost, pipe vs shared-file model "
              f"({PARAMS.cores}-core box, {REPS} reps)")
    record_table("E10_pipe_vs_file", text, data={"rows": rows})
    return data


def test_e10_pipe_vs_file(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for n in PE_COUNTS:
        pipe_lds, file_lds = data[(n, "LdS")]
        # LdS much faster on the file model (1 seek+read vs 2r+2w+2 switches)
        assert file_lds < pipe_lds / 1.5
        pipe_sts, file_sts = data[(n, "StS")]
        # StS only "slightly faster" on the file model (the pipe write is
        # cheap for the PE, but the control process must wake to apply it,
        # contending for the uniprocessor) — same order of magnitude.
        assert file_sts < pipe_sts
        assert file_sts > pipe_sts / 10
