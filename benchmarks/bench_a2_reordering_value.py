"""A2 (ablation) — how much of CSI's win comes from *reordering*?

CSI may reorder operations within a thread's dependence DAG to create
alignment; a cheaper variant keeps program order verbatim (the schedule
may only interleave/merge, never permute).  We compare the two search
modes on random regions of varying dependence density, plus the pure
alignment achievable on traced interpreter streams (which are chains, so
reordering is impossible by construction — the lower bound of this axis).
"""

import pytest

from conftest import api_induce, bench_seed, record_table
from repro.core import uniform_cost_model
from repro.core.search import SearchConfig
from repro.interp.trace import interp_cost_model, trace_program
from repro.lang import compile_mimdc
from repro.util import format_table, geometric_mean
from repro.workloads import RandomRegionSpec, random_region
from repro.workloads.programs import kernel_source

_BASE = bench_seed(0)
SEEDS = (_BASE, _BASE + 1, _BASE + 2)
MODEL = uniform_cost_model(cost=3.0, mask_overhead=1.0)
BUDGET = 30_000


def run_experiment():
    rows = []
    data = {}
    for arity, label in ((0, "chain-free (no deps)"), (1, "sparse deps"),
                         (2, "dense deps")):
        dag_speedups, order_speedups = [], []
        for seed in SEEDS:
            region = random_region(
                RandomRegionSpec(num_threads=5, min_len=10, max_len=14,
                                 vocab_size=8, overlap=0.6,
                                 private_vocab=False, max_read_arity=arity),
                seed=seed)
            dag = api_induce(region, MODEL, method="search",
                         config=SearchConfig(node_budget=BUDGET))
            order = api_induce(region, MODEL, method="search",
                           config=SearchConfig(node_budget=BUDGET,
                                               respect_order=True))
            dag_speedups.append(dag.speedup_vs_serial)
            order_speedups.append(order.speedup_vs_serial)
        data[label] = (geometric_mean(dag_speedups),
                       geometric_mean(order_speedups))
        rows.append([label, round(data[label][0], 2), round(data[label][1], 2),
                     f"{data[label][0] / data[label][1]:.2f}x"])

    # Traced interpreter streams: strict chains, alignment only.
    unit = compile_mimdc(kernel_source("divergent", 4))
    bundle = trace_program(unit.program, 32, max_ops_per_pe=24)
    traced = api_induce(bundle.region(), interp_cost_model(), method="search",
                    config=SearchConfig(node_budget=BUDGET))
    data["traced chains"] = (traced.speedup_vs_serial, traced.speedup_vs_serial)
    rows.append(["traced interpreter streams",
                 round(traced.speedup_vs_serial, 2),
                 round(traced.speedup_vs_serial, 2), "1.00x"])
    text = format_table(
        ["workload", "DAG reordering", "program order only",
         "reordering gain"],
        rows, title="A2: value of intra-thread reordering (speedup vs serial)")
    record_table("A2_reordering_value", text, data={"rows": rows})
    return data


def test_a2_reordering_value(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for label, (dag, order) in data.items():
        assert dag >= order - 1e-9, label       # freedom never hurts
        assert order >= 1.0 - 1e-9
    # Reordering buys the most where dependences are absent.
    free_gain = data["chain-free (no deps)"][0] / data["chain-free (no deps)"][1]
    dense_gain = data["dense deps"][0] / data["dense deps"][1]
    assert free_gain >= dense_gain - 0.05
