"""E17 — portfolio racing vs the best single strategy, cold vs warm store.

``method="portfolio"`` races every induction strategy (search, greedy,
anneal, serial) concurrently under one deadline and returns the best
verified schedule.  This experiment measures the two claims that justify
the machinery, on a mixed bag of E3-style regions (varying thread count,
depth and opcode overlap, so different strategies win on different
regions):

1. **Never worse than the best single pick.**  For each region, every
   strategy runs alone under the same deadline/budget; the race's cost
   must be <= the best (and hence every) individual deadline-limited
   result.  This is asserted, not just reported — strategies are
   deterministic under a fixed seed, so equality with the per-region
   minimum is exact.

2. **The outcomes store pays for itself.**  A fresh (cold) store races
   everything; after ``MIN_RACES_TO_SKIP`` races per region it has
   learned which strategies never win there and skips them, so a warm
   race fields fewer competitors and reaches the winning schedule faster
   (fewer threads contending for the interpreter).  Headline:
   time-to-best, cold round 1 vs the first warm round, plus how many
   strategies actually raced.

``E17_SMOKE=1`` shrinks the workload/budget for CI; the regression gate
compares the measured warm/cold time-to-best speedup (a same-box ratio,
hardware-independent) against the committed
``benchmarks/BENCH_portfolio.json`` snapshot.
"""

import json
import os
import pathlib

from conftest import bench_seed, record_table
from repro.core import maspar_cost_model
from repro.core.portfolio import PORTFOLIO_STRATEGIES, run_portfolio
from repro.core.search import SearchConfig
from repro.sched import StrategyOutcomesStore
from repro.sched.outcomes import MIN_RACES_TO_SKIP
from repro.util import format_table
from repro.workloads import RandomRegionSpec, random_region

SMOKE = os.environ.get("E17_SMOKE", "") not in ("", "0")
MODEL = maspar_cost_model()
DEADLINE_S = 0.5 if SMOKE else 2.0
#: Sized so the search finishes its budget well inside the deadline even
#: while sharing the interpreter with three rivals: the single-strategy
#: and raced searches then explore identical trees, which is what makes
#: criterion 1 an exact assertion instead of a timing coin-flip.
BUDGET = 8_000 if SMOKE else 60_000
SNAPSHOT = pathlib.Path(__file__).parent / "BENCH_portfolio.json"

MIXED = [
    ("3x8 balanced", RandomRegionSpec(num_threads=3, min_len=8, max_len=8,
                                      vocab_size=8, overlap=0.6,
                                      private_vocab=False), 42),
    ("4x6 shared", RandomRegionSpec(num_threads=4, min_len=6, max_len=6,
                                    vocab_size=6, overlap=0.8,
                                    private_vocab=False), 7),
    ("4x9 sparse", RandomRegionSpec(num_threads=4, min_len=9, max_len=9,
                                    vocab_size=12, overlap=0.4,
                                    private_vocab=False), 11),
    ("3x10 deep", RandomRegionSpec(num_threads=3, min_len=10, max_len=10,
                                   vocab_size=9, overlap=0.5,
                                   private_vocab=False), 3),
]


def workload():
    picks = MIXED[:2] if SMOKE else MIXED
    return [(name, random_region(spec, seed=bench_seed(seed)))
            for name, spec, seed in picks]


def _race(region, **kwargs):
    return run_portfolio(region, MODEL, config=SearchConfig(node_budget=BUDGET),
                         deadline_s=DEADLINE_S, **kwargs)


def _winner_ttb(result):
    """The winning strategy's time-to-best, in seconds."""
    for outcome in result.outcomes:
        if outcome.strategy == result.winner:
            return outcome.time_to_best_s
    return None


def run_experiment():
    rows = []
    data = {"smoke": SMOKE, "deadline_s": DEADLINE_S, "budget": BUDGET,
            "regions": {}}
    cold_ttb_total = warm_ttb_total = 0.0
    cold_raced_total = warm_raced_total = 0
    for name, region in workload():
        # Criterion 1 baseline: each strategy alone, same deadline/budget.
        single = {
            strategy: _race(region, strategies=(strategy,)).cost
            for strategy in PORTFOLIO_STRATEGIES
        }
        # Criterion 2: race until the store has skip evidence, then once
        # more warm.  Race 1 is the cold measurement.
        store = StrategyOutcomesStore()
        cold = _race(region, store=store)
        for _ in range(MIN_RACES_TO_SKIP - 1):
            _race(region, store=store)
        warm = _race(region, store=store)

        cold_ttb = _winner_ttb(cold) or 0.0
        warm_ttb = _winner_ttb(warm) or 0.0
        cold_raced = sum(not o.skipped for o in cold.outcomes)
        warm_raced = sum(not o.skipped for o in warm.outcomes)
        cold_ttb_total += cold_ttb
        warm_ttb_total += warm_ttb
        cold_raced_total += cold_raced
        warm_raced_total += warm_raced

        best_single = min(single.values())
        assert warm.cost <= best_single + 1e-9, (
            f"{name}: warm portfolio {warm.cost} worse than best single "
            f"strategy {best_single}")
        assert cold.cost <= best_single + 1e-9, (
            f"{name}: cold portfolio {cold.cost} worse than best single "
            f"strategy {best_single}")

        data["regions"][name] = {
            "single": single,
            "portfolio_cost": warm.cost,
            "winner": warm.winner,
            "proven": warm.proven,
            "cold_ttb_s": cold_ttb,
            "warm_ttb_s": warm_ttb,
            "cold_raced": cold_raced,
            "warm_raced": warm_raced,
        }
        rows.append([name, warm.winner,
                     *(f"{single[s]:.0f}" for s in PORTFOLIO_STRATEGIES),
                     f"{warm.cost:.0f}",
                     f"{cold_ttb * 1e3:.1f}", f"{warm_ttb * 1e3:.1f}",
                     f"{cold_raced}->{warm_raced}"])

    n = len(data["regions"])
    data["cold_ttb_s"] = cold_ttb_total / n
    data["warm_ttb_s"] = warm_ttb_total / n
    data["warm_speedup"] = (cold_ttb_total / warm_ttb_total
                            if warm_ttb_total else float("inf"))
    data["cold_raced_total"] = cold_raced_total
    data["warm_raced_total"] = warm_raced_total
    text = format_table(
        ["region", "winner", *PORTFOLIO_STRATEGIES, "portfolio",
         "cold ttb ms", "warm ttb ms", "raced"],
        rows,
        title=f"E17: portfolio race vs single strategies "
              f"(deadline {DEADLINE_S}s, budget {BUDGET:,}"
              f"{', smoke' if SMOKE else ''}); warm store speedup "
              f"{data['warm_speedup']:.2f}x")
    record_table("E17_portfolio", text, data=data)
    return data


def _snapshot_speedup():
    """Committed reference warm/cold speedup for this mode, or None."""
    if not SNAPSHOT.exists():
        return None
    snap = json.loads(SNAPSHOT.read_text())
    mode = snap.get("smoke" if SMOKE else "full")
    return mode["warm_speedup"] if mode else None


def test_e17_portfolio(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # The store must have learned something: strictly fewer strategies
    # race warm than cold (deterministic — same races, same evidence).
    assert data["warm_raced_total"] < data["cold_raced_total"], (
        f"outcomes store skipped nothing "
        f"({data['cold_raced_total']} -> {data['warm_raced_total']})")
    # A thinner field must not be slower to the winning schedule beyond
    # timer noise.
    assert data["warm_ttb_s"] <= data["cold_ttb_s"] * 1.25, (
        f"warm race slower to best: {data['warm_ttb_s']*1e3:.1f}ms vs "
        f"cold {data['cold_ttb_s']*1e3:.1f}ms")
    # Regression gate vs the committed snapshot: the warm/cold ratio is
    # measured on one box in one process, so a large drop means the
    # selector stopped thinning the field (not that CI hardware changed).
    reference = _snapshot_speedup()
    if reference is not None:
        assert data["warm_speedup"] >= 0.5 * reference, (
            f"warm-store speedup regressed: {data['warm_speedup']:.2f}x vs "
            f"snapshot {reference:.2f}x (allowed floor "
            f"{0.5 * reference:.2f}x)")
