"""A3 (ablation) — automatic subinterpreter generation (§3.1.3.3).

The MasPar interpreter's 32 subinterpreters come from a 5-group opcode
partition; the text says a program generated them automatically.  This
experiment reproduces the generator: record which instruction types
co-occur per cycle for each kernel, locally optimize the partition for
that profile, and compare the resulting decode cost against the hand-built
default partition and against the monolithic (no-subinterpreter) decoder.

Also answers a design question: how much does a partition tuned for one
workload help (or hurt) another?  (Cross-application row.)
"""

import numpy as np
import pytest

from conftest import record_table
from repro.interp import (
    InterpreterConfig,
    MIMDInterpreter,
    collect_profile,
    optimize_partition,
)
from repro.lang import compile_mimdc
from repro.util import format_table
from repro.workloads.programs import kernel_source

NUM_PES = 64
KERNELS = {"axpy": 25, "divergent": 20, "barrier_heavy": 10}


def run_with(unit, family=None, record=False):
    cfg = InterpreterConfig(record_present=record)
    interp = MIMDInterpreter(unit.program, NUM_PES, config=cfg,
                             layout=unit.layout, subinterpreters=family)
    stats = interp.run()
    return interp, stats


def run_experiment():
    units = {k: compile_mimdc(kernel_source(k, it)) for k, it in KERNELS.items()}
    profiles = {}
    results = {}
    families = {}
    rows = []
    for name, unit in units.items():
        interp, _ = run_with(unit, record=True)
        profiles[name] = collect_profile(interp.present_log)
        families[name], _ = optimize_partition(profiles[name], seed=0, restarts=2)
    for name, unit in units.items():
        _, default_stats = run_with(unit)
        _, opt_stats = run_with(unit, family=families[name])
        mono_interp = MIMDInterpreter(
            unit.program, NUM_PES,
            config=InterpreterConfig(subinterpreters=False), layout=unit.layout)
        mono_stats = mono_interp.run()
        # Cross-application: partition tuned for a *different* kernel.
        other = next(k for k in units if k != name)
        _, cross_stats = run_with(unit, family=families[other])
        results[name] = {
            "mono": mono_stats.breakdown["decode"],
            "default": default_stats.breakdown["decode"],
            "tuned": opt_stats.breakdown["decode"],
            "cross": cross_stats.breakdown["decode"],
        }
        rows.append([name,
                     round(results[name]["mono"], 0),
                     round(results[name]["default"], 0),
                     round(results[name]["tuned"], 0),
                     round(results[name]["cross"], 0),
                     f"{results[name]['default'] / results[name]['tuned']:.2f}x"])
    text = format_table(
        ["kernel", "monolithic", "default 5-group", "profile-tuned",
         "tuned for other kernel", "tuned gain"],
        rows,
        title=f"A3: decode cycles by subinterpreter partition ({NUM_PES} PEs)")
    record_table("A3_partition_optimizer", text, data={"rows": rows})
    return results


def test_a3_partition_optimizer(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for name, r in results.items():
        # Any subinterpreter scheme beats the monolithic decoder...
        assert r["default"] < r["mono"]
        # ...and profile tuning never loses to the hand partition.
        assert r["tuned"] <= r["default"] * 1.001
    # Tuning matters: at least one kernel improves clearly.
    assert any(r["default"] / r["tuned"] > 1.2 for r in results.values())
    # A mis-tuned partition is still a valid subinterpreter scheme (it
    # costs more than the right one, but runs correctly).
    for r in results.values():
        assert r["cross"] >= r["tuned"] * 0.999
