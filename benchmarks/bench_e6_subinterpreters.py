"""E6 — subinterpreters and frequency biasing (§3.1.3.3).

Ablation over the interpreter's decode-reduction features on kernels with
different instruction-mix profiles.  Expected shape: subinterpreters help
everything (smaller dispatch per cycle); frequency biasing helps mixes with
rare expensive ops (it aligns the Muls/Divs of misaligned PEs) and is
neutral-to-slightly-negative on uniform compute.
"""

import numpy as np
import pytest

from conftest import record_table
from repro.interp import FrequencyBias, InterpreterConfig, run_program
from repro.lang import compile_mimdc
from repro.util import format_table
from repro.workloads.programs import kernel_source

NUM_PES = 64
KERNELS = {"axpy": 40, "divergent": 30, "staggered": 40, "barrier_heavy": 15}

VARIANTS = {
    "monolithic": InterpreterConfig(subinterpreters=False),
    "subinterp": InterpreterConfig(subinterpreters=True),
    "subinterp+bias4": InterpreterConfig(subinterpreters=True,
                                         bias=FrequencyBias(period=4)),
}


def run_experiment():
    rows = []
    data: dict[tuple[str, str], float] = {}
    for kname, iters in KERNELS.items():
        unit = compile_mimdc(kernel_source(kname, iters))
        ref = None
        row = [kname]
        for vname, cfg in VARIANTS.items():
            interp, stats = run_program(unit.program, NUM_PES, config=cfg,
                                        layout=unit.layout)
            result = interp.peek_global(unit.address_of("result"))
            if ref is None:
                ref = result
            assert np.array_equal(result, ref), "variant changed semantics"
            data[(kname, vname)] = stats.cycles
            row.append(round(stats.cycles, 0))
        row.append(f"{data[(kname, 'monolithic')] / data[(kname, 'subinterp')]:.2f}x")
        rows.append(row)
    text = format_table(
        ["kernel"] + list(VARIANTS) + ["subinterp gain"],
        rows,
        title=f"E6: decode-reduction ablation ({NUM_PES} PEs, SIMD cycles)")
    record_table("E6_subinterpreters", text, data={"rows": rows})
    return data


def test_e6_subinterpreters(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for kname in KERNELS:
        assert data[(kname, "subinterp")] < data[(kname, "monolithic")]
    # Biasing helps where expensive ops are misaligned by a cycle or two
    # (the staggered kernel); on phase-aligned kernels it must be near
    # neutral (stall overhead bounded).
    assert data[("staggered", "subinterp+bias4")] < data[("staggered", "subinterp")]
    assert data[("axpy", "subinterp+bias4")] <= 1.10 * data[("axpy", "subinterp")]
