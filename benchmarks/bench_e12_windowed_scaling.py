"""E12 — induction at scale: windowed search vs heuristics.

The exact CSI search cannot touch a 480-op region ("a usably large
instruction set makes hand factoring unfeasible" — and exhaustive search
too).  This experiment compares the practical options on large random
regions: greedy list scheduling, simulated annealing, and the windowed
exact search at several window widths — reporting schedule cost, speedup
over serialization, and total search effort.

Two regimes, both reported:

- *long uniform regions* (8x60 ops): the heuristics dominate — greedy can
  align ops across the whole region while windows cannot merge across
  seams; widening windows closes the gap monotonically but slowly.  An
  honest negative result for naive windowing.
- *moderate dense regions* (3x10 ops): greedy's myopia is the bigger
  error (E3 measured its optimality gap at 1.1-1.5x there) and one exact
  window beats it outright.
"""

import pytest

from conftest import api_induce, bench_seed, record_table
from repro.core import (
    anneal_schedule,
    greedy_schedule,
    maspar_cost_model,
    serial_schedule,
    verify_schedule,
)
from repro.core.search import SearchConfig
from repro.util import format_table
from repro.workloads import RandomRegionSpec, random_region

MODEL = maspar_cost_model()
THREADS = 8
LENGTH = 60
WINDOWS = (2, 4, 8, 12)
BUDGET = 4_000


def big_region(seed=0):
    return random_region(
        RandomRegionSpec(num_threads=THREADS, min_len=LENGTH, max_len=LENGTH,
                         vocab_size=12, overlap=0.6, private_vocab=False),
        seed=bench_seed(seed))


def run_experiment():
    region = big_region()
    serial_cost = serial_schedule(region, MODEL).cost(MODEL)
    rows = []
    data = {}

    greedy = greedy_schedule(region, MODEL)
    verify_schedule(greedy, region, MODEL)
    data["greedy"] = greedy.cost(MODEL)
    rows.append(["greedy list scheduling", "-", round(greedy.cost(MODEL), 0),
                 f"{serial_cost / greedy.cost(MODEL):.2f}x", "-"])

    annealed, astats = anneal_schedule(region, MODEL, seed=0, steps=300)
    verify_schedule(annealed, region, MODEL)
    data["anneal"] = annealed.cost(MODEL)
    rows.append(["simulated annealing (300 steps)", "-",
                 round(annealed.cost(MODEL), 0),
                 f"{serial_cost / annealed.cost(MODEL):.2f}x", "-"])

    for w in WINDOWS:
        result = api_induce(region, MODEL, window_size=w,
                                 config=SearchConfig(node_budget=BUDGET))
        verify_schedule(result.schedule, region, MODEL)
        cost = result.schedule.cost(MODEL)
        data[("window", w)] = (cost, result.total_nodes)
        rows.append([f"windowed search (w={w})", result.num_windows,
                     round(cost, 0), f"{serial_cost / cost:.2f}x",
                     result.total_nodes])

    text = format_table(
        ["method", "windows", "schedule cost", "speedup vs serial",
         "search nodes"],
        rows,
        title=f"E12a: induction on a long {THREADS}x{LENGTH}-op region "
              f"(serial cost {serial_cost:.0f})")
    record_table("E12a_windowed_scaling", text,
                 data={"rows": rows, "serial_cost": serial_cost})

    # Moderate dense region: one exact window vs greedy.
    moderate = random_region(
        RandomRegionSpec(num_threads=3, min_len=10, max_len=10,
                         vocab_size=8, overlap=0.6, private_vocab=False),
        seed=bench_seed(42))
    g2 = greedy_schedule(moderate, MODEL).cost(MODEL)
    w2 = api_induce(moderate, MODEL, window_size=10,
                         config=SearchConfig(node_budget=300_000))
    verify_schedule(w2.schedule, moderate, MODEL)
    data["moderate"] = (g2, w2.schedule.cost(MODEL), w2.all_optimal)
    record_table("E12b_moderate_region",
                 f"E12b: moderate 3x10 region — greedy {g2:.0f} vs "
                 f"exact-window {w2.schedule.cost(MODEL):.0f} "
                 f"(optimal={w2.all_optimal})",
                 data={"greedy": g2, "window": w2.schedule.cost(MODEL),
                       "optimal": w2.all_optimal})
    return serial_cost, data


def test_e12_windowed_scaling(benchmark):
    serial_cost, data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Everyone beats serialization by a wide margin at 8 threads.
    assert serial_cost / data["greedy"] > 2.0
    # Wider windows monotonically (weakly) improve the stitched schedule.
    costs = [data[("window", w)][0] for w in WINDOWS]
    assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))
    # Regime 1 (long region): heuristics dominate naive windowing — the
    # honest negative result; widening windows narrows the gap.
    assert data["greedy"] <= costs[-1]
    assert costs[-1] < 0.75 * costs[0]
    # Effort stays bounded by windows x budget.
    for w in WINDOWS:
        _, nodes = data[("window", w)]
        assert nodes <= ((LENGTH + w - 1) // w) * BUDGET
    # Regime 2 (moderate region): the exact window beats greedy.
    g2, w2_cost, optimal = data["moderate"]
    assert optimal and w2_cost <= g2
    assert w2_cost < g2  # strictly better here (E3's greedy gap)
