"""E4 — CSI factoring of the MIMD interpreter (§3.1.3.2).

Two views of the same claim ("without this factoring, the interpreter
would be several times slower"):

1. *Schedule level*: handler bodies of a growing MIMD instruction mix are
   fed to CSI as a multi-thread region; we report induced cost vs the
   serialized handlers and vs hand prefix/suffix factoring.
2. *Interpreter level*: a divergent MIMDC kernel is run through the
   interpreter with and without factored shared sequences.
"""

import pytest

from conftest import api_induce, record_table
from repro.core.search import SearchConfig
from repro.interp import InterpreterConfig, run_program
from repro.lang import compile_mimdc
from repro.util import format_table
from repro.workloads.programs import kernel_source
from repro.workloads.threads import (
    interpreter_handler_region,
    interpreter_micro_cost_model,
)

MIXES = {
    "2 (Add,Mul)": ("Add", "Mul"),
    "4 (+Push,Ld)": ("Add", "Mul", "Push", "Ld"),
    "6 (+PushC,StS)": ("Add", "Mul", "Push", "Ld", "PushC", "StS"),
    "8 (+Sub,LdD)": ("Add", "Mul", "Push", "Ld", "PushC", "StS", "Sub", "LdD"),
}


def run_experiment():
    model = interpreter_micro_cost_model()
    rows = []
    data = {}
    for label, mix in MIXES.items():
        region = interpreter_handler_region(mix)
        serial = api_induce(region, model, method="serial")
        factor = api_induce(region, model, method="factor")
        search = api_induce(region, model, method="search",
                        config=SearchConfig(node_budget=100_000))
        data[label] = (serial.cost, factor.cost, search.cost)
        rows.append([label, round(serial.cost, 0), round(factor.cost, 0),
                     round(search.cost, 0),
                     f"{serial.cost / search.cost:.2f}x"])
    # Interpreter-level ablation.
    unit = compile_mimdc(kernel_source("divergent", 30))
    cycles = {}
    for name, cfg in (("factored", InterpreterConfig(subinterpreters=False)),
                      ("unfactored", InterpreterConfig(factored=False,
                                                       subinterpreters=False))):
        _, stats = run_program(unit.program, 64, config=cfg, layout=unit.layout)
        cycles[name] = stats.cycles
    rows.append(["interpreter run (divergent x64 PEs)",
                 round(cycles["unfactored"], 0), "-",
                 round(cycles["factored"], 0),
                 f"{cycles['unfactored'] / cycles['factored']:.2f}x"])
    text = format_table(
        ["handler mix", "serialized", "hand prefix/suffix", "CSI",
         "CSI speedup"],
        rows,
        title="E4: factoring interpreter handlers (micro-op cycle costs)")
    record_table("E4_interpreter_factoring", text, data={"rows": rows})
    return data, cycles


def test_e4_interpreter_factoring(benchmark):
    data, cycles = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for label, (serial, factor, search) in data.items():
        assert search <= factor <= serial
    # Bigger mixes -> bigger induction wins; the largest mix shows the
    # "several times slower without factoring" effect.
    big_serial, _, big_search = data["8 (+Sub,LdD)"]
    assert big_serial / big_search > 2.0
    assert cycles["unfactored"] > cycles["factored"]
