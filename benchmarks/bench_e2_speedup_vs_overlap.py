"""E2 — CSI speedup vs inter-thread code similarity.

Sweeps the overlap knob of the random-region generator: at overlap 0 with
thread-private opcode vocabularies nothing can merge (speedup 1); at
overlap 1 the threads are opcode-identical and collapse toward a single
sequence (speedup -> thread count).  The induced speedup should rise
monotonically (up to sampling noise) between the two extremes.
"""

import pytest

from conftest import api_induce, record_table
from repro.core import maspar_cost_model
from repro.core.search import SearchConfig
from repro.util import format_table, geometric_mean
from repro.workloads import RandomRegionSpec, random_region

OVERLAPS = (0.0, 0.25, 0.5, 0.75, 1.0)
SEEDS = (0, 1, 2)
THREADS = 8
MODEL = maspar_cost_model()
CONFIG = SearchConfig(node_budget=30_000)


def run_experiment():
    results: dict[float, dict[str, float]] = {}
    for overlap in OVERLAPS:
        per_method: dict[str, list[float]] = {"greedy": [], "search": []}
        util: list[float] = []
        for seed in SEEDS:
            region = random_region(
                RandomRegionSpec(num_threads=THREADS, min_len=14, max_len=14,
                                 vocab_size=12, overlap=overlap,
                                 private_vocab=True),
                seed=seed)
            for method in ("greedy", "search"):
                r = api_induce(region, MODEL, method=method,
                           config=CONFIG if method == "search" else None)
                per_method[method].append(r.speedup_vs_serial)
                if method == "search":
                    util.append(r.schedule.sharing_factor())
        results[overlap] = {
            "greedy": geometric_mean(per_method["greedy"]),
            "search": geometric_mean(per_method["search"]),
            "sharing": sum(util) / len(util),
        }
    rows = [[o, round(results[o]["greedy"], 2), round(results[o]["search"], 2),
             round(results[o]["sharing"], 2)] for o in OVERLAPS]
    text = format_table(
        ["overlap", "greedy speedup", "search speedup", "ops per slot"],
        rows,
        title=f"E2: CSI speedup vs inter-thread similarity ({THREADS} threads)")
    record_table("E2_speedup_vs_overlap", text, data={"rows": rows})
    return results


def test_e2_speedup_vs_overlap(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert results[0.0]["search"] == pytest.approx(1.0, abs=0.01)
    assert results[1.0]["search"] > 0.8 * THREADS  # near-total collapse
    assert results[1.0]["search"] > results[0.5]["search"] > results[0.0]["search"]
    # sharing factor tracks the same trend
    assert results[1.0]["sharing"] > results[0.0]["sharing"]
