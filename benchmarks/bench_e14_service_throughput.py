"""E14 (service) — batching/dedup throughput of the induction server.

The service exists because real frontends resubmit the *same* hot regions
constantly (every PE executes the interpreter loop, every kernel shares
inner bodies).  A workload that repeats each unique region 10x should
therefore cost the server ~one search per unique region — duplicates
either join the in-flight group (dedup) or hit the request-level cache —
while a sequential cold ``repro.api.induce`` loop pays for every repeat.

Acceptance criterion: the service sustains at least 5x the throughput of
the sequential cold loop on the 10x-repeat workload.
"""

import os
import time
from concurrent.futures import ThreadPoolExecutor

from conftest import bench_seed, record_table
from repro import api
from repro.core import ScheduleCache, maspar_cost_model
from repro.service import Endpoint, InductionServer, ServerConfig, ServiceClient
from repro.util import format_table
from repro.workloads import RandomRegionSpec, random_region

MODEL = maspar_cost_model()
#: Seeds 1/2 exhaust this budget (~0.4 s of search each); the workload is
#: search-dominated, so throughput gains must come from dedup, not noise.
SPEC = RandomRegionSpec(num_threads=6, min_len=14, max_len=14, vocab_size=12,
                        overlap=0.4, private_vocab=False)
_BASE = bench_seed(0)
SEEDS = (_BASE + 1, _BASE + 2, _BASE + 4)
REPEATS = 10
BUDGET = 10_000


def _workload():
    """(label, request) pairs: each unique region repeated REPEATS times."""
    items = []
    for seed in SEEDS:
        region = random_region(SPEC, seed=seed)
        request = api.InductionRequest(region=region, model=MODEL,
                                       budget=BUDGET)
        for rep in range(REPEATS):
            items.append((f"r{seed}[{rep}]", request))
    return items


def run_experiment():
    workload = _workload()
    n = len(workload)

    # -- baseline: sequential cold induce(), no cache, every repeat paid.
    t0 = time.perf_counter()
    seq_costs = {}
    for label, request in workload:
        result = api.induce(request)
        seq_costs[label.split("[")[0]] = result.cost
    seq_wall = time.perf_counter() - t0

    # -- service: batching + dedup + request cache over a unix socket.
    workers = min(4, os.cpu_count() or 1)
    server = InductionServer(
        ServerConfig(endpoint=Endpoint.unix("/tmp/repro-bench-e14.sock"),
                     workers=workers, queue_size=2 * n, batch_max=16),
        cache=ScheduleCache())
    try:
        client = ServiceClient(server.endpoint)
        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=10) as pool:
            results = list(pool.map(
                lambda item: (item[0], client.submit(item[1])), workload))
        svc_wall = time.perf_counter() - t0
        stats = client.stats()
    finally:
        server.shutdown()

    # Same schedules, an order of magnitude fewer searches.
    for label, result in results:
        assert result.cost == seq_costs[label.split("[")[0]]
        assert not result.degraded
    searches = stats["requests"] - stats["dedup_hits"] - \
        stats.get("cache_hits", 0)

    ratio = (n / svc_wall) / (n / seq_wall)
    rows = [
        ["sequential cold induce()", n, f"{seq_wall:.2f} s",
         f"{n / seq_wall:.1f} req/s", "-"],
        [f"service ({workers} workers)", n, f"{svc_wall:.2f} s",
         f"{n / svc_wall:.1f} req/s", f"{ratio:.1f}x"],
        ["  searches actually run", searches, "-", "-",
         f"dedup {stats['dedup_hits']:.0f} + cache "
         f"{stats.get('cache_hits', 0):.0f}"],
    ]
    text = format_table(
        ["configuration", "requests", "wall", "throughput", "effect"],
        rows,
        title=f"E14: service throughput, {len(SEEDS)} unique regions x "
              f"{REPEATS} repeats ({os.cpu_count()} cores)")
    record_table("E14_service_throughput", text,
                 data={"rows": rows, "seq_wall": seq_wall,
                       "svc_wall": svc_wall, "ratio": ratio})
    return {"ratio": ratio, "searches": searches,
            "dedup_hits": stats["dedup_hits"]}


def test_e14_service_throughput(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Acceptance criterion: >= 5x sequential cold throughput.
    assert data["ratio"] >= 5.0
    # The 10x-repeat workload must collapse to ~one search per region.
    assert data["searches"] <= len(SEEDS) + 2
    assert data["dedup_hits"] >= 1
