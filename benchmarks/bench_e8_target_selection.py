"""E8 — target selection quality and the §4 load crossover.

Three questions the AHS evaluation turns on:

1. *Crossover*: "most MIMDC programs with parallelism width 128 should
   probably be run on the MasPar... however, if the MasPar has a multitude
   of jobs waiting and the Sun is idle, running this code on the Sun may
   result in the smallest expected execution time."  We sweep the MasPar's
   queue depth and report where the selection flips.
2. *Selection quality*: across random load scenarios, how close is the
   chosen target's *actual* simulated time to the best candidate's
   (regret), with a fresh load database.
3. *Robustness to timing error*: ±50% noise on one op estimate "is
   unlikely to have a significant adverse effect" — we perturb the database
   and measure how often the choice degrades.
"""

import numpy as np
import pytest

from conftest import record_table
from repro.lang import compile_mimdc
from repro.sched import (
    LoadGenerator,
    select_target,
    simulate_execution,
    update_load_averages,
)
from repro.util import format_table
from repro.workloads.machines import table1_database
from repro.workloads.programs import kernel_source


def crossover_sweep():
    unit = compile_mimdc(kernel_source("axpy", 200))
    rows = []
    flip = None
    for queue in (1, 3, 10, 30, 60, 100, 200, 400):
        db = table1_database(maspar_load=float(queue))
        sel = select_target(db, unit.counts, 128)
        on_maspar = sel.targets[0].model == "maspar"
        if flip is None and not on_maspar:
            flip = queue
        rows.append([queue, sel.description[:48],
                     f"{sel.predicted_time * 1e3:.2f} ms"])
    text = format_table(
        ["MasPar queue depth", "selected target", "predicted time"],
        rows, title="E8a: 128-PE program, MasPar load crossover")
    record_table("E8a_crossover", text, data={"rows": rows, "flip": flip})
    return flip


def selection_regret(n_scenarios=6):
    """Chosen-vs-best actual time over random load scenarios."""
    unit = compile_mimdc(kernel_source("axpy", 200))
    regrets = []
    rows = []
    for seed in range(n_scenarios):
        db = table1_database()
        loads = LoadGenerator(db.machines(), mean_load=2.0, volatility=1.0,
                              seed=seed)
        for _ in range(3):
            loads.step()
        update_load_averages(db, loads)
        background = {m: loads.background_jobs(m) for m in db.machines()}
        sel = select_target(db, unit.counts, 8)
        actual = simulate_execution(sel, unit.counts, background,
                                    recompile_overhead=0.0)
        # Oracle: actual time of every single-target candidate.
        best = actual
        for entry in db:
            try:
                cand = select_target(
                    type(db)([entry]), unit.counts, 8)
                t = simulate_execution(cand, unit.counts, background,
                                       recompile_overhead=0.0)
                best = min(best, t)
            except RuntimeError:
                continue
        regret = actual / best
        regrets.append(regret)
        rows.append([seed, sel.description[:40], f"{actual * 1e3:.2f} ms",
                     f"{best * 1e3:.2f} ms", round(regret, 2)])
    text = format_table(
        ["scenario", "chosen", "actual", "oracle best", "regret"],
        rows, title="E8b: selection quality under random load (8 PEs)")
    record_table("E8b_selection_regret", text,
                 data={"rows": rows, "regrets": regrets})
    return regrets


def noise_robustness(n_trials=10):
    """Perturb each op estimate by up to ±50%; count changed-and-worse picks."""
    unit = compile_mimdc(kernel_source("barrier_heavy", 50))
    rng = np.random.default_rng(0)
    base_db = table1_database()
    base_sel = select_target(base_db, unit.counts, 16)
    degraded = 0
    for _ in range(n_trials):
        db = table1_database()
        for entry in db.entries():
            noisy = {op: t * float(rng.uniform(0.5, 1.5))
                     for op, t in entry.op_times.items()}
            object.__setattr__(entry, "op_times", entry.op_times)  # keep frozen
            db._entries[entry.key] = entry.__class__(
                name=entry.name, model=entry.model, width=entry.width,
                op_times=noisy, load_average=entry.load_average,
                load_increment=entry.load_increment, cores=entry.cores)
        sel = select_target(db, unit.counts, 16)
        # Score the noisy pick with the *true* database's prediction.
        true_time = _predict_with_truth(base_db, sel, unit.counts, 16)
        base_time = base_sel.predicted_time
        if true_time > 1.5 * base_time:
            degraded += 1
    return degraded, n_trials


def _predict_with_truth(db, sel, counts, n_pes):
    from repro.sched.cost import predict_time
    if sel.kind == "single":
        entry = db.get(*sel.targets[0].key)
        return predict_time(entry, counts, added_processes=n_pes)
    worst = 0.0
    for key, pes in sel.assignments.items():
        entry = db.get(*key)
        worst = max(worst, predict_time(entry, counts,
                                        added_processes=len(pes)))
    return worst


def run_experiment():
    flip = crossover_sweep()
    regrets = selection_regret()
    degraded, trials = noise_robustness()
    record_table("E8c_noise_robustness",
                 f"E8c: with +/-50% op-time noise, {degraded}/{trials} trials "
                 f"picked a target >1.5x worse than the noise-free choice",
                 data={"degraded": degraded, "trials": trials})
    return flip, regrets, degraded, trials


def test_e8_target_selection(benchmark):
    flip, regrets, degraded, trials = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)
    # The crossover exists and sits at a deep-but-plausible queue depth.
    assert flip is not None and 3 <= flip <= 400
    # Selection tracks the oracle within 2x in most scenarios.
    assert float(np.median(regrets)) < 1.5
    assert max(regrets) < 4.0
    # ±50% timing error almost never causes a significantly worse pick.
    assert degraded <= trials // 5
