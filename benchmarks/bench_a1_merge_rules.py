"""A1 (ablation) — what the merge rules and masking overhead cost.

Two design choices DESIGN.md calls out:

1. ``require_equal_imm`` — hardware without per-PE register indexing (the
   MasPar restriction, §3.1.3.1) only merges ops whose immediates agree.
   How much induced speedup does that restriction forfeit?
2. ``mask_overhead`` — every slot pays for loading the PE enable mask.
   How fast does the induction win erode as masking gets pricier?
"""

import pytest

from conftest import api_induce, bench_seed, record_table
from repro.core import CostModel
from repro.core.search import SearchConfig
from repro.util import format_table, geometric_mean
from repro.workloads import RandomRegionSpec, random_region

_BASE = bench_seed(0)
SEEDS = (_BASE, _BASE + 1, _BASE + 2)
CONFIG = SearchConfig(node_budget=30_000)


def _regions(imm_heavy: bool):
    """Random regions; ``imm_heavy`` attaches small immediates to ops."""
    out = []
    for seed in SEEDS:
        region = random_region(
            RandomRegionSpec(num_threads=6, min_len=10, max_len=14,
                             vocab_size=6, overlap=0.7, private_vocab=False),
            seed=seed)
        if imm_heavy:
            from repro.core.ops import Operation, Region, ThreadCode
            threads = []
            for tc in region.threads:
                ops = tuple(
                    Operation(op.thread, op.index, op.opcode, op.reads,
                              op.writes, imm=(op.index * 7 + op.thread) % 3)
                    for op in tc.ops)
                threads.append(ThreadCode(tc.thread, ops))
            region = Region(tuple(threads))
        out.append(region)
    return out


def run_experiment():
    rows = []
    data = {}
    # Part 1: immediate-matching restriction.
    for strict in (False, True):
        model = CostModel(mask_overhead=1.0, default_cost=3.0,
                          require_equal_imm=strict)
        speedups = [api_induce(r, model, method="search", config=CONFIG).speedup_vs_serial
                    for r in _regions(imm_heavy=True)]
        data[("imm", strict)] = geometric_mean(speedups)
        rows.append([f"require_equal_imm={strict}", "-",
                     round(data[('imm', strict)], 2)])
    # Part 2: masking-overhead sweep.  With heterogeneous op costs the
    # induction win is biased toward merging expensive ops; a growing
    # per-slot mask cost dilutes that bias (in the uniform-cost limit the
    # overhead cancels out entirely and the speedup is just ops/slots).
    het_costs = {f"op{i}": float(2 ** i) for i in range(6)}
    for overhead in (0.0, 1.0, 3.0, 10.0, 30.0):
        model = CostModel(class_cost=het_costs, mask_overhead=overhead,
                          default_cost=3.0)
        speedups = [api_induce(r, model, method="search", config=CONFIG).speedup_vs_serial
                    for r in _regions(imm_heavy=False)]
        data[("mask", overhead)] = geometric_mean(speedups)
        rows.append(["mask overhead sweep", overhead,
                     round(data[('mask', overhead)], 3)])
    text = format_table(
        ["ablation", "mask overhead", "search speedup vs serial"],
        rows, title="A1: merge-rule and masking-overhead ablation (6 threads)")
    record_table("A1_merge_rules", text, data={"rows": rows})
    return data


def test_a1_merge_rules(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # The immediate restriction costs real speedup on immediate-heavy code.
    assert data[("imm", True)] < data[("imm", False)]
    assert data[("imm", True)] >= 1.0
    # Masking overhead weakly erodes the win but never below 1.
    sweep = [data[("mask", o)] for o in (0.0, 1.0, 3.0, 10.0, 30.0)]
    assert all(a >= b - 1e-6 for a, b in zip(sweep, sweep[1:]))
    assert sweep[-1] >= 1.0
