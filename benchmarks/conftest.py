"""Shared benchmark plumbing.

Every experiment prints its paper-style table through :func:`record_table`,
which also persists it under ``benchmarks/results/`` so EXPERIMENTS.md can
cite stable numbers; the console copy is emitted at session end through the
terminal reporter (pytest captures ordinary prints).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_TABLES: list[str] = []


def record_table(name: str, text: str) -> None:
    """Persist one experiment table and queue it for terminal output."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    _TABLES.append(text)


def api_induce(region, model, *, window_size: int = 0, **kwargs):
    """Benchmark entry point for induction, routed through ``repro.api``.

    Accepts the old keyword spelling (``window_size``) so experiment code
    reads like the paper; everything else maps 1:1 onto
    :class:`repro.api.InductionRequest`.
    """
    from repro import api

    request = api.InductionRequest(region=region, model=model,
                                   window=window_size, **kwargs)
    return api.induce(request)


@pytest.hookimpl(trylast=True)
def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "experiment tables")
    for text in _TABLES:
        terminalreporter.write_line(text)
        terminalreporter.write_line("")
