"""Shared benchmark plumbing.

Every experiment prints its paper-style table through :func:`record_table`,
which also persists it under ``benchmarks/results/`` so EXPERIMENTS.md can
cite stable numbers; the console copy is emitted at session end through the
terminal reporter (pytest captures ordinary prints).

Each experiment additionally lands a machine-readable
``benchmarks/results/<name>.json`` (the rendered table plus whatever
structured ``data`` the experiment passes — config, wall times, nodes/sec),
which is what the CI regression check diffs against committed snapshots.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_TABLES: list[str] = []


def _jsonable(value):
    """Best-effort conversion to something ``json.dump`` accepts."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def record_table(name: str, text: str, data: dict | None = None) -> None:
    """Persist one experiment table (+ JSON twin) and queue terminal output.

    ``data`` is the experiment's structured payload (config, wall times,
    throughput); the JSON twin always carries the rendered table so even
    data-less experiments stay machine-diffable.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    payload = {
        "name": name,
        "python": platform.python_version(),
        "platform": sys.platform,
        "table": text,
    }
    if data is not None:
        payload["data"] = _jsonable(data)
    with (RESULTS_DIR / f"{name}.json").open("w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    _TABLES.append(text)


def bench_seed(default: int = 0) -> int:
    """Workload seed for one experiment: ``$REPRO_SEED`` when set, else
    ``default``.

    Benchmarks keep their historical per-experiment defaults (so committed
    result snapshots stay comparable), but a single environment variable
    reseeds every randomized workload at once — the same knob ``repro
    fuzz`` resolves, so a seed printed by either tool reproduces in both.
    """
    from repro.util.rng import resolve_seed

    return resolve_seed(default=default)


def api_induce(region, model, *, window_size: int = 0, **kwargs):
    """Benchmark entry point for induction, routed through ``repro.api``.

    Accepts the old keyword spelling (``window_size``) so experiment code
    reads like the paper; everything else maps 1:1 onto
    :class:`repro.api.InductionRequest`.
    """
    from repro import api

    request = api.InductionRequest(region=region, model=model,
                                   window=window_size, **kwargs)
    return api.induce(request)


@pytest.hookimpl(trylast=True)
def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "experiment tables")
    for text in _TABLES:
        terminalreporter.write_line(text)
        terminalreporter.write_line("")
